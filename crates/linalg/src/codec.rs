//! Bitwise-exact binary encoding for checkpoint/restore.
//!
//! The serving layer persists fitted models (scalers, PCA, net weights,
//! streaming-detector state) and must restore them to *score-identical*
//! state: the repo's equivalence contracts are all pinned bitwise, so a
//! checkpoint that loses one ULP breaks them. Every `f64` therefore
//! round-trips through [`f64::to_bits`] — NaN payloads, signed zeros and
//! infinities included — and integers are fixed-width little-endian.
//!
//! The format is deliberately dumb: no varints, no compression, no
//! self-description. Each type writes its fields in a fixed order with
//! length-prefixed containers; readers validate lengths against the
//! remaining buffer *before* allocating, so truncated or corrupt input
//! fails with a [`CodecError`] instead of panicking or OOM-ing.

use crate::matrix::Matrix;

/// Decoding failure. All decode paths return this — none panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the announced data did.
    Truncated,
    /// A magic header did not match the expected format tag.
    BadMagic,
    /// A version byte newer (or older) than this build supports.
    UnsupportedVersion(u8),
    /// A structurally invalid value (bad enum tag, inconsistent lengths).
    Corrupt(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated input"),
            CodecError::BadMagic => write!(f, "bad magic header"),
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            CodecError::Corrupt(what) => write!(f, "corrupt input: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// An append-only byte sink with fixed-width little-endian primitives.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, returning the encoded buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Forget the contents but keep the allocation, so one writer can
    /// serve many encodes (the spill path reuses a single buffer).
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Append raw bytes verbatim (magic headers).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a bool as one byte (0/1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as a `u64` (the format is 64-bit everywhere).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append an `f64` by bit pattern — the bitwise-exactness anchor.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a length-prefixed `f64` slice.
    pub fn put_f64s(&mut self, vs: &[f64]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_f64(v);
        }
    }

    /// Append a length-prefixed `usize` slice (as `u64`s).
    pub fn put_usizes(&mut self, vs: &[usize]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_usize(v);
        }
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append a matrix: shape, then the row-major `f64` bit patterns.
    pub fn put_matrix(&mut self, m: &Matrix) {
        self.put_usize(m.rows());
        self.put_usize(m.cols());
        for &v in m.as_slice() {
            self.put_f64(v);
        }
    }
}

/// A cursor over an encoded buffer; every read validates remaining length
/// first and returns [`CodecError::Truncated`] instead of panicking.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read `n` raw bytes (magic headers).
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a bool; any byte other than 0/1 is corrupt.
    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Corrupt("bool byte out of range")),
        }
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Read a `usize` written by [`ByteWriter::put_usize`].
    pub fn get_usize(&mut self) -> Result<usize, CodecError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| CodecError::Corrupt("usize overflow"))
    }

    /// Read an `f64` by bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Length-prefixed count, validated against the bytes actually left
    /// (`elem_bytes` per element) so corrupt lengths fail before any
    /// allocation happens.
    pub fn get_len(&mut self, elem_bytes: usize) -> Result<usize, CodecError> {
        let n = self.get_usize()?;
        if n.checked_mul(elem_bytes).is_none_or(|total| total > self.remaining()) {
            return Err(CodecError::Truncated);
        }
        Ok(n)
    }

    /// Read a length-prefixed `f64` vector.
    pub fn get_f64s(&mut self) -> Result<Vec<f64>, CodecError> {
        let n = self.get_len(8)?;
        (0..n).map(|_| self.get_f64()).collect()
    }

    /// Read a length-prefixed `usize` vector.
    pub fn get_usizes(&mut self) -> Result<Vec<usize>, CodecError> {
        let n = self.get_len(8)?;
        (0..n).map(|_| self.get_usize()).collect()
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, CodecError> {
        let n = self.get_len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Corrupt("invalid UTF-8"))
    }

    /// Read a matrix written by [`ByteWriter::put_matrix`].
    pub fn get_matrix(&mut self) -> Result<Matrix, CodecError> {
        let rows = self.get_usize()?;
        let cols = self.get_usize()?;
        let total = rows.checked_mul(cols).ok_or(CodecError::Corrupt("matrix shape overflow"))?;
        if total.checked_mul(8).is_none_or(|bytes| bytes > self.remaining()) {
            return Err(CodecError::Truncated);
        }
        let data: Result<Vec<f64>, CodecError> = (0..total).map(|_| self.get_f64()).collect();
        Ok(Matrix::from_vec(rows, cols, data?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_usize(123_456);
        w.put_f64(-0.0);
        w.put_str("exathlon");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_usize().unwrap(), 123_456);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.get_str().unwrap(), "exathlon");
        assert!(r.is_done());
    }

    #[test]
    fn f64_round_trip_is_bitwise_for_every_special_value() {
        let specials = [
            0.0,
            -0.0,
            1.0,
            f64::MIN_POSITIVE,
            f64::MIN_POSITIVE / 2.0, // subnormal
            f64::MAX,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            f64::from_bits(0x7FF8_0000_0000_0001), // NaN with payload
        ];
        let mut w = ByteWriter::new();
        w.put_f64s(&specials);
        let bytes = w.into_bytes();
        let got = ByteReader::new(&bytes).get_f64s().unwrap();
        for (a, b) in specials.iter().zip(&got) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn matrix_round_trips_bitwise() {
        let m = Matrix::from_vec(2, 3, vec![1.5, -2.25, f64::NAN, 0.0, -0.0, 1e300]);
        let mut w = ByteWriter::new();
        w.put_matrix(&m);
        let bytes = w.into_bytes();
        let got = ByteReader::new(&bytes).get_matrix().unwrap();
        assert_eq!(got.rows(), 2);
        assert_eq!(got.cols(), 3);
        for (a, b) in m.as_slice().iter().zip(got.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn every_truncation_errors_not_panics() {
        let mut w = ByteWriter::new();
        w.put_f64s(&[1.0, 2.0, 3.0]);
        w.put_str("hello");
        w.put_matrix(&Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            let result: Result<(), CodecError> = (|| {
                r.get_f64s()?;
                r.get_str()?;
                r.get_matrix()?;
                Ok(())
            })();
            assert!(result.is_err(), "prefix of {cut} bytes must fail to decode");
        }
    }

    #[test]
    fn corrupt_length_fails_before_allocating() {
        // Announce u64::MAX elements with 8 bytes of payload: must error
        // out on the length check, not attempt the allocation.
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX);
        w.put_f64(1.0);
        let bytes = w.into_bytes();
        assert!(ByteReader::new(&bytes).get_f64s().is_err());
        assert!(ByteReader::new(&bytes).get_usizes().is_err());
        assert!(ByteReader::new(&bytes).get_str().is_err());
    }

    #[test]
    fn bad_bool_is_corrupt() {
        let bytes = [2u8];
        assert_eq!(
            ByteReader::new(&bytes).get_bool(),
            Err(CodecError::Corrupt("bool byte out of range"))
        );
    }
}
