//! A dense, row-major `f64` matrix with the kernels the rest of the
//! workspace needs: multiplication, transpose, element-wise maps, row and
//! column access, and a handful of constructors.
//!
//! The compute-heavy entry points ([`Matrix::matmul`],
//! [`Matrix::matmul_transpose`], [`Matrix::transpose_matmul`],
//! [`Matrix::matvec`], [`Matrix::transpose_matvec`], [`Matrix::transpose`])
//! delegate to the cache-blocked, register-tiled kernels in
//! [`crate::kernel`]; the naive reference loops they replaced are retained
//! there (`kernel::naive_*`) for regression tests and benchmarks.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Sub};

/// A dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Create a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Create an identity matrix of size `n x n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Build a matrix from a slice of rows.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Self { rows: rows.len(), cols, data }
    }

    /// Build a matrix by evaluating `f(row, col)` for every cell.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// A 1 x n row vector.
    pub fn row_vector(values: &[f64]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// An n x 1 column vector.
    pub fn col_vector(values: &[f64]) -> Self {
        Self::from_vec(values.len(), 1, values.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        debug_assert!(j < self.cols);
        (0..self.rows).map(|i| self.data[i * self.cols + j]).collect()
    }

    /// Iterate over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Matrix transpose, cache-tiled: both the read and the write stream
    /// touch at most a `32 x 32` tile (8 KiB each) per pass instead of
    /// striding the whole matrix, which is what made the plain double
    /// loop (`kernel::naive_transpose`) an O(n²)-cache-miss hot spot in
    /// PCA and LSTM backward. The output is a pure permutation of the
    /// input — value-identical to the naive loop.
    pub fn transpose(&self) -> Matrix {
        const TILE: usize = 32;
        let mut out = Matrix::zeros(self.cols, self.rows);
        for ib in (0..self.rows).step_by(TILE) {
            let i_end = (ib + TILE).min(self.rows);
            for jb in (0..self.cols).step_by(TILE) {
                let j_end = (jb + TILE).min(self.cols);
                for i in ib..i_end {
                    let row = &self.data[i * self.cols..(i + 1) * self.cols];
                    for (j, &v) in row.iter().enumerate().take(j_end).skip(jb) {
                        out.data[j * self.rows + i] = v;
                    }
                }
            }
        }
        out
    }

    /// Matrix multiplication `self * other` via the blocked GEMM kernel
    /// ([`crate::kernel::matmul`]); bitwise identical to the retained
    /// naive `i-k-j` loop for finite inputs.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        crate::kernel::matmul(self, other)
    }

    /// `self * other^T` without materializing the transpose
    /// ([`crate::kernel::matmul_transpose`]) — the dense-layer forward
    /// shape `x · Wᵀ`.
    ///
    /// # Panics
    /// Panics unless `self.cols() == other.cols()`.
    pub fn matmul_transpose(&self, other: &Matrix) -> Matrix {
        crate::kernel::matmul_transpose(self, other)
    }

    /// `self^T * other` without materializing the transpose
    /// ([`crate::kernel::transpose_matmul`]) — the backprop shape
    /// `dzᵀ · x` and the covariance shape `DᵀD`.
    ///
    /// # Panics
    /// Panics unless `self.rows() == other.rows()`.
    pub fn transpose_matmul(&self, other: &Matrix) -> Matrix {
        crate::kernel::transpose_matmul(self, other)
    }

    /// Multiply by a vector: `self * v`, returning a vector of length `rows`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        crate::kernel::matvec(self, v)
    }

    /// `self^T * v` without materializing the transpose.
    pub fn transpose_matvec(&self, v: &[f64]) -> Vec<f64> {
        crate::kernel::transpose_matvec(self, v)
    }

    /// [`Matrix::transpose`] into a caller-reused buffer: same cache-tiled
    /// permutation, no fresh allocation once `out` has grown to the
    /// steady-state shape. Every output cell is written, so the
    /// unspecified contents left by [`Matrix::reset`] never leak through.
    pub fn transpose_into(&self, out: &mut Matrix) {
        const TILE: usize = 32;
        out.reset(self.cols, self.rows);
        for ib in (0..self.rows).step_by(TILE) {
            let i_end = (ib + TILE).min(self.rows);
            for jb in (0..self.cols).step_by(TILE) {
                let j_end = (jb + TILE).min(self.cols);
                for i in ib..i_end {
                    let row = &self.data[i * self.cols..(i + 1) * self.cols];
                    for (j, &v) in row.iter().enumerate().take(j_end).skip(jb) {
                        out.data[j * self.rows + i] = v;
                    }
                }
            }
        }
    }

    /// Copy another matrix into this one, reusing the allocation
    /// (`reset` + one `copy_from_slice`) — the workspace-staging
    /// replacement for `x.clone()` in the training hot loops.
    pub fn copy_from(&mut self, other: &Matrix) {
        self.reset(other.rows, other.cols);
        self.data.copy_from_slice(&other.data);
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Element-wise map in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&other.data).map(|(a, b)| a * b).collect(),
        }
    }

    /// Scale every element by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|x| x * s)
    }

    /// `self += other * s` (axpy), used by the optimizers.
    pub fn add_scaled(&mut self, other: &Matrix, s: f64) {
        assert_eq!(self.shape(), other.shape(), "add_scaled shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b * s;
        }
    }

    /// Outer product of two vectors: `a * b^T` giving `a.len() x b.len()`.
    pub fn outer(a: &[f64], b: &[f64]) -> Matrix {
        let mut m = Matrix::zeros(a.len(), b.len());
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0.0 {
                continue;
            }
            let row = m.row_mut(i);
            for (r, &bj) in row.iter_mut().zip(b) {
                *r = ai * bj;
            }
        }
        m
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Maximum absolute value of any element (0 for an empty matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// Reshape in place to `rows x cols`, reusing the existing allocation
    /// (growing it once if needed). Cell contents are unspecified after
    /// the call — every consumer must overwrite them, as the data-plane
    /// gather paths do with one `copy_from_slice` per row.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Return a sub-matrix consisting of the given rows (copied).
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix { rows: indices.len(), cols: self.cols, data }
    }

    /// [`Matrix::select_rows`] into a caller-reused buffer: one
    /// `copy_from_slice` per selected row, no fresh allocation once `out`
    /// has grown to the steady-state batch shape. Bitwise identical
    /// contents to `select_rows`.
    pub fn select_rows_into(&self, indices: &[usize], out: &mut Matrix) {
        out.reset(indices.len(), self.cols);
        for (k, &i) in indices.iter().enumerate() {
            out.row_mut(k).copy_from_slice(self.row(i));
        }
    }

    /// Return a sub-matrix consisting of the given columns (copied).
    pub fn select_cols(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.rows);
        for i in 0..self.rows {
            let row = self.row(i);
            for &j in indices {
                data.push(row[j]);
            }
        }
        Matrix { rows: self.rows, cols: indices.len(), data }
    }
}

impl Default for Matrix {
    /// An empty `0 x 0` matrix — the placeholder shape of workspace
    /// buffers before their first `reset`.
    fn default() -> Self {
        Self::zeros(0, 0)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect(),
        }
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "sub shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect(),
        }
    }
}

impl Mul<&Matrix> for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs)
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:9.4} ", self[(i, j)])?;
            }
            writeln!(f, "{}]", if self.cols > 8 { "..." } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_matmul_is_noop() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::identity(2);
        assert_eq!(m.matmul(&i), m);
        assert_eq!(i.matmul(&m), m);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c[(0, 0)], 58.0);
        assert_eq!(c[(0, 1)], 64.0);
        assert_eq!(c[(1, 0)], 139.0);
        assert_eq!(c[(1, 1)], 154.0);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(0, 1)], 4.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let v = vec![1.0, 0.5, -1.0];
        let out = a.matvec(&v);
        let as_mat = a.matmul(&Matrix::col_vector(&v));
        assert_eq!(out, as_mat.col(0));
    }

    #[test]
    fn transpose_matvec_matches_explicit_transpose() {
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let v = vec![1.0, -1.0, 2.0];
        assert_eq!(a.transpose_matvec(&v), a.transpose().matvec(&v));
    }

    #[test]
    fn matmul_transpose_variants_match_explicit_transpose() {
        let a = Matrix::from_fn(5, 7, |i, j| ((i * 7 + j) as f64 * 0.13).sin());
        let b = Matrix::from_fn(6, 7, |i, j| ((i + j * 3) as f64 * 0.21).cos());
        assert_eq!(a.matmul_transpose(&b), a.matmul(&b.transpose()));
        let c = Matrix::from_fn(5, 4, |i, j| ((i * 2 + j) as f64 * 0.17).sin());
        assert_eq!(a.transpose_matmul(&c), a.transpose().matmul(&c));
    }

    #[test]
    fn transpose_roundtrip_large_non_square() {
        // Exercises the tiled path with ragged edge tiles.
        let a = Matrix::from_fn(67, 41, |i, j| (i * 100 + j) as f64);
        let t = a.transpose();
        assert_eq!(t.shape(), (41, 67));
        assert_eq!(t[(40, 66)], a[(66, 40)]);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn outer_product() {
        let m = Matrix::outer(&[1.0, 2.0], &[3.0, 4.0, 5.0]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(1, 2)], 10.0);
    }

    #[test]
    fn hadamard_and_scale() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![4.0, 5.0, 6.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn add_sub_ops() {
        let a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Matrix::from_vec(1, 2, vec![3.0, 5.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn select_rows_and_cols() {
        let a = Matrix::from_vec(3, 3, (1..=9).map(|x| x as f64).collect());
        let r = a.select_rows(&[2, 0]);
        assert_eq!(r.row(0), &[7.0, 8.0, 9.0]);
        assert_eq!(r.row(1), &[1.0, 2.0, 3.0]);
        let c = a.select_cols(&[1]);
        assert_eq!(c.col(0), vec![2.0, 5.0, 8.0]);
    }

    #[test]
    fn select_rows_into_matches_select_rows() {
        let a = Matrix::from_vec(4, 3, (1..=12).map(|x| x as f64).collect());
        let mut out = Matrix::zeros(0, 0);
        for indices in [vec![1, 3, 0], vec![2], vec![], vec![0, 0, 3]] {
            a.select_rows_into(&indices, &mut out);
            let fresh = a.select_rows(&indices);
            assert_eq!(out.shape(), fresh.shape());
            assert_eq!(out.as_slice(), fresh.as_slice());
        }
    }

    #[test]
    fn reset_reshapes_and_reuses() {
        let mut m = Matrix::zeros(4, 5);
        m.reset(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.as_slice().len(), 6);
        m.reset(6, 2);
        assert_eq!(m.shape(), (6, 2));
        assert_eq!(m.as_slice().len(), 12);
    }

    #[test]
    fn frobenius_and_sums() {
        let a = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(a.sum(), 7.0);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn from_rows_ragged_panics() {
        let rows = vec![vec![1.0, 2.0], vec![3.0]];
        let result = std::panic::catch_unwind(|| Matrix::from_rows(&rows));
        assert!(result.is_err());
    }

    #[test]
    fn from_fn_builds_expected() {
        let m = Matrix::from_fn(2, 2, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 10.0, 11.0]);
    }
}
