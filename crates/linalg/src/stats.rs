//! Descriptive statistics used across the benchmark.
//!
//! These back three separate parts of the paper:
//!
//! * the unsupervised **threshold-selection** rules `threshold = S1 + c*S2`
//!   with `(S1, S2)` drawn from (mean, std), (median, MAD) or (Q3, IQR)
//!   (Appendix D.2),
//! * the **entropy-based consistency** metrics for explanation discovery
//!   (§4.2: stability and concordance),
//! * the **risk-ratio / reward** computations inside the ED methods
//!   themselves (EXstream's entropy-based single-feature reward, MacroBase's
//!   equal-width binning).
//!
//! All statistics here operate on the *finite* values of their input,
//! skipping NaN (the pipeline's missing-metric encoding) **and** ±inf:
//! a serving path ingesting raw client traffic will see infinities, and a
//! single one flowing into the `(S1, S2)` threshold rules used to yield
//! an infinite or NaN threshold that flags nothing (or everything).

/// Arithmetic mean of the finite values; `0.0` when there are none.
pub fn mean(xs: &[f64]) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for &x in xs {
        if x.is_finite() {
            sum += x;
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Population variance of the finite values (divides by `n`); `0.0` when
/// there are none.
pub fn variance(xs: &[f64]) -> f64 {
    let m = mean(xs);
    let mut sum = 0.0;
    let mut n = 0usize;
    for &x in xs {
        if x.is_finite() {
            let d = x - m;
            sum += d * d;
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Sorted copy of the finite values of `xs`. Filtering must reject ±inf
/// too, not just NaN: an inf kept here used to surface as an infinite
/// quantile (and from there an infinite or NaN IQR-rule threshold).
fn sorted_finite(xs: &[f64]) -> Vec<f64> {
    let mut v: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after filter"));
    v
}

/// Linear-interpolation quantile `q in [0, 1]` of the finite values.
/// Returns `0.0` for an empty input.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    let v = sorted_finite(xs);
    quantile_sorted(&v, q)
}

/// Quantile of an already-sorted slice (ascending, no NaN).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median of the finite values.
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Median absolute deviation, scaled by the 1.4826 consistency constant so
/// that it estimates the standard deviation under normality — exactly the
/// `MAD = 1.4826 * median(|X - median(X)|)` definition in Appendix D.2.
pub fn mad(xs: &[f64]) -> f64 {
    let med = median(xs);
    let devs: Vec<f64> = xs.iter().filter(|x| x.is_finite()).map(|&x| (x - med).abs()).collect();
    1.4826 * median(&devs)
}

/// Interquartile range `Q3 - Q1` of the finite values.
pub fn iqr(xs: &[f64]) -> f64 {
    let v = sorted_finite(xs);
    quantile_sorted(&v, 0.75) - quantile_sorted(&v, 0.25)
}

/// First and third quartiles `(Q1, Q3)`.
pub fn quartiles(xs: &[f64]) -> (f64, f64) {
    let v = sorted_finite(xs);
    (quantile_sorted(&v, 0.25), quantile_sorted(&v, 0.75))
}

/// Minimum of the finite values (`+inf` if none). The filter matches the
/// documented contract: a `-inf` sample is *not* the data minimum, it is
/// a broken measurement (and it used to collapse every histogram range
/// built on top of this function).
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().filter(|x| x.is_finite()).fold(f64::INFINITY, f64::min)
}

/// Maximum of the finite values (`-inf` if none).
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().filter(|x| x.is_finite()).fold(f64::NEG_INFINITY, f64::max)
}

/// Shannon entropy (base 2) of a discrete distribution given as
/// non-negative weights. Weights are normalized internally; zero weights
/// contribute nothing. Returns `0.0` when the total weight is zero.
///
/// This is the `H(A)` of the paper's consistency metric: identical
/// explanations give entropy `log2(k)` for an explanation of `k` features
/// (the paper's `H_1 = 0`, `H_2 = 1`, `H_3 = 1.58` reference points).
pub fn entropy(weights: &[f64]) -> f64 {
    let total: f64 = weights.iter().filter(|w| **w > 0.0).sum();
    if total <= 0.0 {
        return 0.0;
    }
    -weights
        .iter()
        .filter(|w| **w > 0.0)
        .map(|&w| {
            let p = w / total;
            p * p.log2()
        })
        .sum::<f64>()
}

/// An equal-width histogram over `[lo, hi]` with `bins` buckets.
///
/// Used by MacroBase's discretization step and by the figure-reproduction
/// binaries that print outlier-score distributions (Figure 4).
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<usize>,
}

impl Histogram {
    /// Build a histogram of the finite values of `xs` with `bins` equal-width
    /// buckets spanning the finite data range. A degenerate range (all values
    /// equal, or no finite value at all) puts everything in the first bucket.
    ///
    /// Non-finite samples are excluded from the range *and* from the
    /// counts. The counting loop used to skip only NaN, so one ±inf
    /// sample both collapsed the range to the `(0.0, 1.0)` fallback and
    /// still got clamp-counted into an edge bin — a single broken
    /// measurement destroyed the whole distribution.
    pub fn from_data(xs: &[f64], bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        let lo = min(xs);
        let hi = max(xs);
        let (lo, hi) = if lo.is_finite() && hi.is_finite() { (lo, hi) } else { (0.0, 1.0) };
        let mut h = Self { lo, hi, counts: vec![0; bins] };
        for &x in xs {
            if x.is_finite() {
                let b = h.bin_of(x);
                h.counts[b] += 1;
            }
        }
        h
    }

    /// The bucket index for value `x` (clamped to the histogram range).
    pub fn bin_of(&self, x: f64) -> usize {
        let bins = self.counts.len();
        if self.hi <= self.lo {
            return 0;
        }
        let frac = (x - self.lo) / (self.hi - self.lo);
        ((frac * bins as f64) as isize).clamp(0, bins as isize - 1) as usize
    }

    /// Bucket counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// The exact `[lo, hi]` range the histogram was built over.
    ///
    /// Callers that need the in-range test (`lo <= x <= hi`) must use
    /// this rather than rederiving the bounds from
    /// [`Histogram::bin_bounds`]: `lo + bins * width` is float
    /// arithmetic and can round *below* the true `hi`, misclassifying
    /// the training maximum itself as out-of-range.
    pub fn range(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// Serialize into `w` (range bounds bitwise, then the counts).
    pub fn encode(&self, w: &mut crate::codec::ByteWriter) {
        w.put_f64(self.lo);
        w.put_f64(self.hi);
        w.put_usizes(&self.counts);
    }

    /// Decode a histogram written by [`Histogram::encode`].
    pub fn decode(r: &mut crate::codec::ByteReader<'_>) -> Result<Self, crate::codec::CodecError> {
        let lo = r.get_f64()?;
        let hi = r.get_f64()?;
        let counts = r.get_usizes()?;
        if counts.is_empty() {
            return Err(crate::codec::CodecError::Corrupt("histogram with zero bins"));
        }
        Ok(Self { lo, hi, counts })
    }

    /// Lower and upper bound of bucket `b`.
    pub fn bin_bounds(&self, b: usize) -> (f64, f64) {
        let bins = self.counts.len() as f64;
        let width = (self.hi - self.lo) / bins;
        (self.lo + b as f64 * width, self.lo + (b + 1) as f64 * width)
    }

    /// Total number of counted values.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }
}

/// Pearson correlation between two equal-length slices; `0.0` when either
/// side has zero variance.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson length mismatch");
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        if x.is_nan() || y.is_nan() {
            continue;
        }
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx <= 0.0 || vy <= 0.0 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_skips_nan() {
        assert_eq!(mean(&[1.0, f64::NAN, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn variance_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [0.0, 10.0];
        assert_eq!(quantile(&xs, 0.5), 5.0);
        assert_eq!(quantile(&xs, 0.0), 0.0);
        assert_eq!(quantile(&xs, 1.0), 10.0);
    }

    #[test]
    fn quantile_empty_is_zero() {
        assert_eq!(quantile(&[], 0.5), 0.0);
    }

    #[test]
    fn mad_of_constant_is_zero() {
        assert_eq!(mad(&[5.0; 10]), 0.0);
    }

    #[test]
    fn mad_known_value() {
        // median = 2, |x - 2| = [1, 0, 1], median deviation = 1
        let xs = [1.0, 2.0, 3.0];
        assert!((mad(&xs) - 1.4826).abs() < 1e-12);
    }

    #[test]
    fn iqr_uniform() {
        let xs: Vec<f64> = (0..=100).map(|x| x as f64).collect();
        assert!((iqr(&xs) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn entropy_uniform_is_log2_k() {
        assert!((entropy(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((entropy(&[1.0, 1.0, 1.0]) - 3f64.log2()).abs() < 1e-12);
        assert_eq!(entropy(&[1.0]), 0.0);
        assert_eq!(entropy(&[]), 0.0);
    }

    #[test]
    fn entropy_skewed_below_uniform() {
        assert!(entropy(&[9.0, 1.0]) < entropy(&[5.0, 5.0]));
    }

    #[test]
    fn histogram_bins_and_bounds() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let h = Histogram::from_data(&xs, 5);
        assert_eq!(h.total(), 10);
        assert_eq!(h.counts().len(), 5);
        // 9.0 must land in the last bin even though it's the max
        assert_eq!(h.bin_of(9.0), 4);
        let (lo, hi) = h.bin_bounds(0);
        assert_eq!(lo, 0.0);
        assert!((hi - 1.8).abs() < 1e-12);
    }

    #[test]
    fn histogram_degenerate_range() {
        let h = Histogram::from_data(&[3.0, 3.0, 3.0], 4);
        assert_eq!(h.total(), 3);
        assert_eq!(h.counts()[0], 3);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_zero_variance_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    fn quartiles_match_quantiles() {
        let xs: Vec<f64> = (0..101).map(|x| x as f64).collect();
        let (q1, q3) = quartiles(&xs);
        assert_eq!(q1, 25.0);
        assert_eq!(q3, 75.0);
    }

    #[test]
    fn min_max_ignore_nan() {
        assert_eq!(min(&[f64::NAN, 2.0, -1.0]), -1.0);
        assert_eq!(max(&[f64::NAN, 2.0, -1.0]), 2.0);
    }

    #[test]
    fn min_max_ignore_infinities() {
        assert_eq!(min(&[f64::NEG_INFINITY, 2.0, -1.0]), -1.0);
        assert_eq!(max(&[f64::INFINITY, 2.0, -1.0]), 2.0);
    }

    #[test]
    fn moments_and_quantiles_ignore_infinities() {
        let clean = [1.0, 2.0, 3.0, 4.0];
        let dirty = [1.0, f64::INFINITY, 2.0, f64::NEG_INFINITY, 3.0, f64::NAN, 4.0];
        assert_eq!(mean(&dirty), mean(&clean));
        assert_eq!(variance(&dirty), variance(&clean));
        assert_eq!(median(&dirty), median(&clean));
        assert_eq!(mad(&dirty), mad(&clean));
        assert_eq!(iqr(&dirty), iqr(&clean));
        assert_eq!(quartiles(&dirty), quartiles(&clean));
    }

    /// Regression test: one ±inf sample used to collapse the range to the
    /// `(0.0, 1.0)` fallback *and* still get counted into a clamped edge
    /// bin — the histogram must instead equal the one built on the finite
    /// values alone.
    #[test]
    fn histogram_ignores_infinite_samples() {
        let finite = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let mut dirty = finite.to_vec();
        dirty.insert(3, f64::INFINITY);
        dirty.push(f64::NEG_INFINITY);
        dirty.push(f64::NAN);
        let clean_h = Histogram::from_data(&finite, 5);
        let dirty_h = Histogram::from_data(&dirty, 5);
        assert_eq!(dirty_h.range(), (0.0, 9.0), "range must span the finite values");
        assert_eq!(dirty_h.range(), clean_h.range());
        assert_eq!(dirty_h.counts(), clean_h.counts());
        assert_eq!(dirty_h.total(), finite.len());
    }

    #[test]
    fn histogram_all_non_finite_falls_back_empty() {
        let h = Histogram::from_data(&[f64::INFINITY, f64::NEG_INFINITY, f64::NAN], 4);
        assert_eq!(h.range(), (0.0, 1.0));
        assert_eq!(h.total(), 0, "non-finite samples must not be counted");
    }

    #[test]
    fn histogram_range_is_exact_not_rederived() {
        // A range whose width does not divide evenly: lo + bins*width
        // rounds off, so bin_bounds can disagree with the true bounds.
        let xs = [0.1, 0.2, 0.30000000000000004, 0.7, 1.3];
        let h = Histogram::from_data(&xs, 7);
        let (lo, hi) = h.range();
        assert_eq!(lo.to_bits(), min(&xs).to_bits());
        assert_eq!(hi.to_bits(), max(&xs).to_bits());
    }

    #[test]
    fn histogram_codec_round_trips() {
        let xs = [0.5, 1.5, 2.5, 2.5, 9.75];
        let h = Histogram::from_data(&xs, 8);
        let mut w = crate::codec::ByteWriter::new();
        h.encode(&mut w);
        let bytes = w.into_bytes();
        let got = Histogram::decode(&mut crate::codec::ByteReader::new(&bytes)).unwrap();
        assert_eq!(got.range().0.to_bits(), h.range().0.to_bits());
        assert_eq!(got.range().1.to_bits(), h.range().1.to_bits());
        assert_eq!(got.counts(), h.counts());
        // Truncations error, never panic.
        for cut in 0..bytes.len() {
            assert!(Histogram::decode(&mut crate::codec::ByteReader::new(&bytes[..cut])).is_err());
        }
    }
}
