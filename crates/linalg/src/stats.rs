//! Descriptive statistics used across the benchmark.
//!
//! These back three separate parts of the paper:
//!
//! * the unsupervised **threshold-selection** rules `threshold = S1 + c*S2`
//!   with `(S1, S2)` drawn from (mean, std), (median, MAD) or (Q3, IQR)
//!   (Appendix D.2),
//! * the **entropy-based consistency** metrics for explanation discovery
//!   (§4.2: stability and concordance),
//! * the **risk-ratio / reward** computations inside the ED methods
//!   themselves (EXstream's entropy-based single-feature reward, MacroBase's
//!   equal-width binning).
//!
//! All quantile-style functions ignore NaN values, mirroring the pipeline's
//! tolerance for the missing metrics of inactive executors.

/// Arithmetic mean; `0.0` for an empty slice. NaNs are skipped.
pub fn mean(xs: &[f64]) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for &x in xs {
        if !x.is_nan() {
            sum += x;
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Population variance (divides by `n`); `0.0` for fewer than one finite value.
pub fn variance(xs: &[f64]) -> f64 {
    let m = mean(xs);
    let mut sum = 0.0;
    let mut n = 0usize;
    for &x in xs {
        if !x.is_nan() {
            let d = x - m;
            sum += d * d;
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Sorted copy of the finite values of `xs`.
fn sorted_finite(xs: &[f64]) -> Vec<f64> {
    let mut v: Vec<f64> = xs.iter().copied().filter(|x| !x.is_nan()).collect();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after filter"));
    v
}

/// Linear-interpolation quantile `q in [0, 1]` of the finite values.
/// Returns `0.0` for an empty input.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    let v = sorted_finite(xs);
    quantile_sorted(&v, q)
}

/// Quantile of an already-sorted slice (ascending, no NaN).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median of the finite values.
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Median absolute deviation, scaled by the 1.4826 consistency constant so
/// that it estimates the standard deviation under normality — exactly the
/// `MAD = 1.4826 * median(|X - median(X)|)` definition in Appendix D.2.
pub fn mad(xs: &[f64]) -> f64 {
    let med = median(xs);
    let devs: Vec<f64> = xs.iter().filter(|x| !x.is_nan()).map(|&x| (x - med).abs()).collect();
    1.4826 * median(&devs)
}

/// Interquartile range `Q3 - Q1` of the finite values.
pub fn iqr(xs: &[f64]) -> f64 {
    let v = sorted_finite(xs);
    quantile_sorted(&v, 0.75) - quantile_sorted(&v, 0.25)
}

/// First and third quartiles `(Q1, Q3)`.
pub fn quartiles(xs: &[f64]) -> (f64, f64) {
    let v = sorted_finite(xs);
    (quantile_sorted(&v, 0.25), quantile_sorted(&v, 0.75))
}

/// Minimum of the finite values (`+inf` if none).
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().filter(|x| !x.is_nan()).fold(f64::INFINITY, f64::min)
}

/// Maximum of the finite values (`-inf` if none).
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().filter(|x| !x.is_nan()).fold(f64::NEG_INFINITY, f64::max)
}

/// Shannon entropy (base 2) of a discrete distribution given as
/// non-negative weights. Weights are normalized internally; zero weights
/// contribute nothing. Returns `0.0` when the total weight is zero.
///
/// This is the `H(A)` of the paper's consistency metric: identical
/// explanations give entropy `log2(k)` for an explanation of `k` features
/// (the paper's `H_1 = 0`, `H_2 = 1`, `H_3 = 1.58` reference points).
pub fn entropy(weights: &[f64]) -> f64 {
    let total: f64 = weights.iter().filter(|w| **w > 0.0).sum();
    if total <= 0.0 {
        return 0.0;
    }
    -weights
        .iter()
        .filter(|w| **w > 0.0)
        .map(|&w| {
            let p = w / total;
            p * p.log2()
        })
        .sum::<f64>()
}

/// An equal-width histogram over `[lo, hi]` with `bins` buckets.
///
/// Used by MacroBase's discretization step and by the figure-reproduction
/// binaries that print outlier-score distributions (Figure 4).
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<usize>,
}

impl Histogram {
    /// Build a histogram of the finite values of `xs` with `bins` equal-width
    /// buckets spanning the data range. A degenerate range (all values equal)
    /// puts everything in the first bucket.
    pub fn from_data(xs: &[f64], bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        let lo = min(xs);
        let hi = max(xs);
        let (lo, hi) = if lo.is_finite() && hi.is_finite() { (lo, hi) } else { (0.0, 1.0) };
        let mut h = Self { lo, hi, counts: vec![0; bins] };
        for &x in xs {
            if !x.is_nan() {
                let b = h.bin_of(x);
                h.counts[b] += 1;
            }
        }
        h
    }

    /// The bucket index for value `x` (clamped to the histogram range).
    pub fn bin_of(&self, x: f64) -> usize {
        let bins = self.counts.len();
        if self.hi <= self.lo {
            return 0;
        }
        let frac = (x - self.lo) / (self.hi - self.lo);
        ((frac * bins as f64) as isize).clamp(0, bins as isize - 1) as usize
    }

    /// Bucket counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Lower and upper bound of bucket `b`.
    pub fn bin_bounds(&self, b: usize) -> (f64, f64) {
        let bins = self.counts.len() as f64;
        let width = (self.hi - self.lo) / bins;
        (self.lo + b as f64 * width, self.lo + (b + 1) as f64 * width)
    }

    /// Total number of counted values.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }
}

/// Pearson correlation between two equal-length slices; `0.0` when either
/// side has zero variance.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson length mismatch");
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        if x.is_nan() || y.is_nan() {
            continue;
        }
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx <= 0.0 || vy <= 0.0 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_skips_nan() {
        assert_eq!(mean(&[1.0, f64::NAN, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn variance_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [0.0, 10.0];
        assert_eq!(quantile(&xs, 0.5), 5.0);
        assert_eq!(quantile(&xs, 0.0), 0.0);
        assert_eq!(quantile(&xs, 1.0), 10.0);
    }

    #[test]
    fn quantile_empty_is_zero() {
        assert_eq!(quantile(&[], 0.5), 0.0);
    }

    #[test]
    fn mad_of_constant_is_zero() {
        assert_eq!(mad(&[5.0; 10]), 0.0);
    }

    #[test]
    fn mad_known_value() {
        // median = 2, |x - 2| = [1, 0, 1], median deviation = 1
        let xs = [1.0, 2.0, 3.0];
        assert!((mad(&xs) - 1.4826).abs() < 1e-12);
    }

    #[test]
    fn iqr_uniform() {
        let xs: Vec<f64> = (0..=100).map(|x| x as f64).collect();
        assert!((iqr(&xs) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn entropy_uniform_is_log2_k() {
        assert!((entropy(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((entropy(&[1.0, 1.0, 1.0]) - 3f64.log2()).abs() < 1e-12);
        assert_eq!(entropy(&[1.0]), 0.0);
        assert_eq!(entropy(&[]), 0.0);
    }

    #[test]
    fn entropy_skewed_below_uniform() {
        assert!(entropy(&[9.0, 1.0]) < entropy(&[5.0, 5.0]));
    }

    #[test]
    fn histogram_bins_and_bounds() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let h = Histogram::from_data(&xs, 5);
        assert_eq!(h.total(), 10);
        assert_eq!(h.counts().len(), 5);
        // 9.0 must land in the last bin even though it's the max
        assert_eq!(h.bin_of(9.0), 4);
        let (lo, hi) = h.bin_bounds(0);
        assert_eq!(lo, 0.0);
        assert!((hi - 1.8).abs() < 1e-12);
    }

    #[test]
    fn histogram_degenerate_range() {
        let h = Histogram::from_data(&[3.0, 3.0, 3.0], 4);
        assert_eq!(h.total(), 3);
        assert_eq!(h.counts()[0], 3);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_zero_variance_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    fn quartiles_match_quantiles() {
        let xs: Vec<f64> = (0..101).map(|x| x as f64).collect();
        let (q1, q3) = quartiles(&xs);
        assert_eq!(q1, 25.0);
        assert_eq!(q3, 75.0);
    }

    #[test]
    fn min_max_ignore_nan() {
        assert_eq!(min(&[f64::NAN, 2.0, -1.0]), -1.0);
        assert_eq!(max(&[f64::NAN, 2.0, -1.0]), 2.0);
    }
}
