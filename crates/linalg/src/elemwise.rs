//! Fused elementwise kernels for the training step.
//!
//! The GEMM layer ([`crate::kernel`], PR 3) and the window data plane
//! (PR 4) left the train stage dominated by what surrounds the matmuls:
//! activation maps into fresh matrices, scalar bias loops, Hadamard
//! products materializing derivative matrices, and optimizers cloning
//! gradients. This module provides the fused, in-place replacements:
//!
//! * [`bias_act`] — the GEMM epilogue: bias-row broadcast-add and
//!   activation applied in one pass over the output buffer,
//! * [`act_backward`] — `dz = g ⊙ act'(y)` without materializing the
//!   derivative matrix,
//! * [`sgd_update`] / [`adam_update`] — optimizer write-back in one pass
//!   over `(value, grad, m, v)`, no gradient clone,
//! * [`accumulate`] / [`axpy`] / [`scale`] / [`outer_acc`] — the gradient
//!   plumbing (`grad += dw`, bias-row sums, rank-1 LSTM updates).
//!
//! # Bitwise contract
//!
//! Every kernel here keeps the PR 3 rules: mul + add, never FMA; fixed
//! per-element expression shape; and a retained scalar `naive_*`
//! reference for each fused entry point. The AVX2 paths use only
//! correctly-rounded IEEE-754 operations (`_mm256_{add,mul,div,sqrt}_pd`
//! and compare/blend selection), so for every input — including NaN, ±∞
//! and signed zeros — the fused result is bitwise identical to the scalar
//! reference (pinned by `crates/linalg/tests/elemwise_properties.rs`).
//! Transcendentals (`tanh`, the stable sigmoid) have no correctly-rounded
//! vector form, so the fused paths keep the scalar calls and win by
//! fusing the surrounding passes instead of vectorizing the function.
//!
//! ReLU is written as the explicit branch `if v > 0.0 { v } else { 0.0 }`
//! (compare + blend in SIMD) rather than `f64::max(v, 0.0)`: `fmax` does
//! not specify which zero `max(-0.0, +0.0)` returns, and the branch form
//! is the one both the scalar and vector paths can reproduce exactly.
//!
//! # Dispatch and escape hatch
//!
//! The fused entry points honor the same runtime ISA detection and
//! `EXATHLON_ISA` downgrade cap as the GEMM layer. Setting
//! [`EXATHLON_NAIVE_ELEMENTWISE=1`](NAIVE_ELEMENTWISE_ENV) routes every
//! entry point to its scalar reference *and* makes the `exathlon-nn`
//! training loops re-enact their pre-workspace allocation behavior
//! (cloned caches, fresh activation/gradient matrices, cloned SGD
//! gradients) — the baseline that `bench_train` measures against and that
//! `tests/trainstep_equivalence.rs` pins bitwise.

/// Environment variable that routes training through the retained naive
/// elementwise + allocation path (`=1`).
pub const NAIVE_ELEMENTWISE_ENV: &str = "EXATHLON_NAIVE_ELEMENTWISE";

/// True when [`NAIVE_ELEMENTWISE_ENV`] requests the naive path. Re-read
/// on every call (same contract as the kernel and data-plane switches) so
/// tests can toggle it at runtime.
pub fn naive_elementwise_mode() -> bool {
    std::env::var(NAIVE_ELEMENTWISE_ENV).map(|v| v.trim() == "1").unwrap_or(false)
}

/// True when the fused kernels should take the AVX2 lane path: a SIMD
/// family is active (after the `EXATHLON_ISA` cap) and the naive
/// escape hatch is off.
#[inline]
fn lanes_active() -> bool {
    !naive_elementwise_mode() && crate::kernel::simd_active()
}

/// Activation kind, mirrored by `exathlon_nn::activation::Activation`
/// (the nn crate maps onto this; linalg stays free of nn types).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Act {
    /// `x` for `x > 0`, else `0`.
    Relu,
    /// `x` for `x > 0`, else `0.2 x`.
    LeakyRelu,
    /// Hyperbolic tangent.
    Tanh,
    /// Numerically-stable logistic sigmoid.
    Sigmoid,
    /// Identity.
    Identity,
}

impl Act {
    /// Apply the activation to one pre-activation value — the canonical
    /// scalar expression every fused path reproduces bitwise.
    #[inline]
    pub fn apply(self, v: f64) -> f64 {
        match self {
            Act::Relu => {
                if v > 0.0 {
                    v
                } else {
                    0.0
                }
            }
            Act::LeakyRelu => {
                if v > 0.0 {
                    v
                } else {
                    0.2 * v
                }
            }
            Act::Tanh => v.tanh(),
            Act::Sigmoid => sigmoid(v),
            Act::Identity => v,
        }
    }

    /// Derivative w.r.t. the pre-activation, in terms of the output `y`.
    #[inline]
    pub fn deriv_from_output(self, y: f64) -> f64 {
        match self {
            Act::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Act::LeakyRelu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.2
                }
            }
            Act::Tanh => 1.0 - y * y,
            Act::Sigmoid => y * (1.0 - y),
            Act::Identity => 1.0,
        }
    }
}

/// Numerically-stable logistic sigmoid — the single canonical
/// implementation (`exathlon_nn::activation::sigmoid` delegates here).
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

// ---------------------------------------------------------------------------
// Fused entry points
// ---------------------------------------------------------------------------

/// GEMM epilogue: `data[r][j] = act(data[r][j] + bias[j])` for every row
/// of the row-major `rows x cols` buffer — the bias broadcast-add and
/// activation of a dense layer fused into one pass over the fresh GEMM
/// output, replacing a scalar bias loop plus an allocating activation map.
///
/// # Panics
/// Panics unless `data.len() == rows * cols` and `bias.len() == cols`.
pub fn bias_act(data: &mut [f64], rows: usize, cols: usize, bias: &[f64], act: Act) {
    assert_eq!(data.len(), rows * cols, "bias_act buffer shape mismatch");
    assert_eq!(bias.len(), cols, "bias_act bias length mismatch");
    #[cfg(target_arch = "x86_64")]
    if lanes_active() {
        // SAFETY: `lanes_active` implies AVX2 was detected at runtime.
        unsafe { lanes::bias_act_avx2(data, cols, bias, act) };
        return;
    }
    naive_bias_act(data, rows, cols, bias, act);
}

/// Retained scalar reference for [`bias_act`].
pub fn naive_bias_act(data: &mut [f64], rows: usize, cols: usize, bias: &[f64], act: Act) {
    assert_eq!(data.len(), rows * cols, "bias_act buffer shape mismatch");
    assert_eq!(bias.len(), cols, "bias_act bias length mismatch");
    for row in data.chunks_exact_mut(cols.max(1)) {
        for (v, &b) in row.iter_mut().zip(bias) {
            *v = act.apply(*v + b);
        }
    }
}

/// Activation backward: `dz[i] = grad[i] * act'(y[i])`, consuming the
/// forward *output* `y` — the Hadamard-with-derivative of backprop
/// without materializing the derivative matrix. The derivative factor is
/// computed first and then multiplied (two steps, exactly like the
/// retained `derivative_from_output` + `hadamard` pair), so signed zeros
/// propagate identically to the historical path.
///
/// # Panics
/// Panics on length mismatch.
pub fn act_backward(y: &[f64], grad: &[f64], dz: &mut [f64], act: Act) {
    assert_eq!(y.len(), grad.len(), "act_backward length mismatch");
    assert_eq!(y.len(), dz.len(), "act_backward output length mismatch");
    #[cfg(target_arch = "x86_64")]
    if lanes_active() {
        // SAFETY: `lanes_active` implies AVX2 was detected at runtime.
        unsafe { lanes::act_backward_avx2(y, grad, dz, act) };
        return;
    }
    naive_act_backward(y, grad, dz, act);
}

/// Retained scalar reference for [`act_backward`].
pub fn naive_act_backward(y: &[f64], grad: &[f64], dz: &mut [f64], act: Act) {
    assert_eq!(y.len(), grad.len(), "act_backward length mismatch");
    assert_eq!(y.len(), dz.len(), "act_backward output length mismatch");
    for ((d, &yi), &g) in dz.iter_mut().zip(y).zip(grad) {
        *d = g * act.deriv_from_output(yi);
    }
}

/// `dst[i] += src[i]` — the `grad += dw` accumulation.
///
/// # Panics
/// Panics on length mismatch.
pub fn accumulate(dst: &mut [f64], src: &[f64]) {
    assert_eq!(dst.len(), src.len(), "accumulate length mismatch");
    #[cfg(target_arch = "x86_64")]
    if lanes_active() {
        // SAFETY: `lanes_active` implies AVX2 was detected at runtime.
        unsafe { lanes::accumulate_avx2(dst, src) };
        return;
    }
    naive_accumulate(dst, src);
}

/// Retained scalar reference for [`accumulate`].
pub fn naive_accumulate(dst: &mut [f64], src: &[f64]) {
    assert_eq!(dst.len(), src.len(), "accumulate length mismatch");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

/// `y[i] += alpha * x[i]` — the vector form of `Matrix::add_scaled`.
///
/// # Panics
/// Panics on length mismatch.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    #[cfg(target_arch = "x86_64")]
    if lanes_active() {
        // SAFETY: `lanes_active` implies AVX2 was detected at runtime.
        unsafe { lanes::axpy_avx2(alpha, x, y) };
        return;
    }
    naive_axpy(alpha, x, y);
}

/// Retained scalar reference for [`axpy`].
pub fn naive_axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (o, &xi) in y.iter_mut().zip(x) {
        *o += xi * alpha;
    }
}

/// `data[i] *= s` — gradient averaging and clip scaling in place.
pub fn scale(data: &mut [f64], s: f64) {
    #[cfg(target_arch = "x86_64")]
    if lanes_active() {
        // SAFETY: `lanes_active` implies AVX2 was detected at runtime.
        unsafe { lanes::scale_avx2(data, s) };
        return;
    }
    naive_scale(data, s);
}

/// Retained scalar reference for [`scale`].
pub fn naive_scale(data: &mut [f64], s: f64) {
    for v in data {
        *v *= s;
    }
}

/// Rank-1 accumulation `out[i][j] += a[i] * b[j]` into a row-major
/// `a.len() x b.len()` buffer — the LSTM gradient shape
/// `grad += outer(dz, x)` without materializing the outer product.
/// Rows with `a[i] == 0.0` are skipped, exactly like `Matrix::outer`
/// building a zero row: the accumulation target is unchanged even when
/// `b` holds non-finite values.
///
/// # Panics
/// Panics unless `out.len() == a.len() * b.len()`.
pub fn outer_acc(a: &[f64], b: &[f64], out: &mut [f64]) {
    assert_eq!(out.len(), a.len() * b.len(), "outer_acc shape mismatch");
    #[cfg(target_arch = "x86_64")]
    if lanes_active() {
        for (&ai, row) in a.iter().zip(out.chunks_exact_mut(b.len().max(1))) {
            if ai == 0.0 {
                continue;
            }
            // SAFETY: `lanes_active` implies AVX2 was detected at runtime.
            unsafe { lanes::axpy_avx2(ai, b, row) };
        }
        return;
    }
    naive_outer_acc(a, b, out);
}

/// Retained scalar reference for [`outer_acc`].
pub fn naive_outer_acc(a: &[f64], b: &[f64], out: &mut [f64]) {
    assert_eq!(out.len(), a.len() * b.len(), "outer_acc shape mismatch");
    for (&ai, row) in a.iter().zip(out.chunks_exact_mut(b.len().max(1))) {
        if ai == 0.0 {
            continue;
        }
        for (o, &bj) in row.iter_mut().zip(b) {
            *o += bj * ai;
        }
    }
}

/// Fused in-place SGD step: `value[i] += grad[i] * (-lr)` — the same
/// expression `Matrix::add_scaled(&grad, -lr)` evaluates, minus the
/// gradient clone the historical optimizer path paid per step.
///
/// # Panics
/// Panics on length mismatch.
pub fn sgd_update(value: &mut [f64], grad: &[f64], lr: f64) {
    axpy(-lr, grad, value);
}

/// Retained scalar reference for [`sgd_update`].
pub fn naive_sgd_update(value: &mut [f64], grad: &[f64], lr: f64) {
    naive_axpy(-lr, grad, value);
}

/// Fused in-place Adam step: moment update, bias correction and
/// write-back in one pass over `(value, grad, m, v)`. Per element, with
/// `bc1 = 1 - β₁ᵗ` and `bc2 = 1 - β₂ᵗ` computed once:
///
/// ```text
/// m   = β₁·m + (1-β₁)·g
/// v   = β₂·v + ((1-β₂)·g)·g
/// val -= (lr·(m/bc1)) / (sqrt(v/bc2) + eps)
/// ```
///
/// The grouping matches the historical scalar loop exactly (left-to-right
/// products, division before the subtraction), and every operation has a
/// correctly-rounded AVX2 form, so the vector path is bitwise identical.
///
/// # Panics
/// Panics on length mismatch or `t == 0`.
#[allow(clippy::too_many_arguments)]
pub fn adam_update(
    value: &mut [f64],
    grad: &[f64],
    m: &mut [f64],
    v: &mut [f64],
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
) {
    assert!(t > 0, "adam step count must start at 1");
    assert_eq!(value.len(), grad.len(), "adam length mismatch");
    assert_eq!(value.len(), m.len(), "adam moment length mismatch");
    assert_eq!(value.len(), v.len(), "adam moment length mismatch");
    let bc1 = 1.0 - beta1.powi(t as i32);
    let bc2 = 1.0 - beta2.powi(t as i32);
    #[cfg(target_arch = "x86_64")]
    if lanes_active() {
        // SAFETY: `lanes_active` implies AVX2 was detected at runtime.
        unsafe { lanes::adam_avx2(value, grad, m, v, lr, beta1, beta2, eps, bc1, bc2) };
        return;
    }
    adam_scalar(value, grad, m, v, lr, beta1, beta2, eps, bc1, bc2);
}

/// Retained scalar reference for [`adam_update`].
#[allow(clippy::too_many_arguments)]
pub fn naive_adam_update(
    value: &mut [f64],
    grad: &[f64],
    m: &mut [f64],
    v: &mut [f64],
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
) {
    assert!(t > 0, "adam step count must start at 1");
    assert_eq!(value.len(), grad.len(), "adam length mismatch");
    assert_eq!(value.len(), m.len(), "adam moment length mismatch");
    assert_eq!(value.len(), v.len(), "adam moment length mismatch");
    let bc1 = 1.0 - beta1.powi(t as i32);
    let bc2 = 1.0 - beta2.powi(t as i32);
    adam_scalar(value, grad, m, v, lr, beta1, beta2, eps, bc1, bc2);
}

#[allow(clippy::too_many_arguments)]
fn adam_scalar(
    value: &mut [f64],
    grad: &[f64],
    m: &mut [f64],
    v: &mut [f64],
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    bc1: f64,
    bc2: f64,
) {
    for i in 0..value.len() {
        let g = grad[i];
        let mi = beta1 * m[i] + (1.0 - beta1) * g;
        let vi = beta2 * v[i] + (1.0 - beta2) * g * g;
        m[i] = mi;
        v[i] = vi;
        let m_hat = mi / bc1;
        let v_hat = vi / bc2;
        value[i] -= lr * m_hat / (v_hat.sqrt() + eps);
    }
}

// ---------------------------------------------------------------------------
// AVX2 lane kernels
// ---------------------------------------------------------------------------

/// 4-lane AVX2 implementations. Every function processes full `f64x4`
/// lanes and finishes the remainder with the *same* scalar expression, so
/// lane and tail elements agree bitwise with the `naive_*` references.
#[cfg(target_arch = "x86_64")]
mod lanes {
    use super::Act;
    #[allow(clippy::wildcard_imports)]
    use std::arch::x86_64::*;

    /// # Safety
    /// Caller guarantees AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn accumulate_avx2(dst: &mut [f64], src: &[f64]) {
        let n = dst.len();
        let full = n - n % 4;
        for i in (0..full).step_by(4) {
            let d = _mm256_loadu_pd(dst.as_ptr().add(i));
            let s = _mm256_loadu_pd(src.as_ptr().add(i));
            _mm256_storeu_pd(dst.as_mut_ptr().add(i), _mm256_add_pd(d, s));
        }
        for i in full..n {
            dst[i] += src[i];
        }
    }

    /// # Safety
    /// Caller guarantees AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy_avx2(alpha: f64, x: &[f64], y: &mut [f64]) {
        let n = y.len();
        let full = n - n % 4;
        let a = _mm256_set1_pd(alpha);
        for i in (0..full).step_by(4) {
            let xv = _mm256_loadu_pd(x.as_ptr().add(i));
            let yv = _mm256_loadu_pd(y.as_ptr().add(i));
            _mm256_storeu_pd(y.as_mut_ptr().add(i), _mm256_add_pd(yv, _mm256_mul_pd(xv, a)));
        }
        for i in full..n {
            y[i] += x[i] * alpha;
        }
    }

    /// # Safety
    /// Caller guarantees AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn scale_avx2(data: &mut [f64], s: f64) {
        let n = data.len();
        let full = n - n % 4;
        let sv = _mm256_set1_pd(s);
        for i in (0..full).step_by(4) {
            let d = _mm256_loadu_pd(data.as_ptr().add(i));
            _mm256_storeu_pd(data.as_mut_ptr().add(i), _mm256_mul_pd(d, sv));
        }
        for v in &mut data[full..] {
            *v *= s;
        }
    }

    /// Lane form of [`Act::apply`] for the selection-based activations.
    /// Tanh/sigmoid never reach this (no correctly-rounded vector form).
    ///
    /// # Safety
    /// Caller guarantees AVX2 is available.
    #[target_feature(enable = "avx2")]
    unsafe fn act_lane(act: Act, z: __m256d) -> __m256d {
        let zero = _mm256_setzero_pd();
        match act {
            // `if z > 0 { z } else { 0.0 }`: ordered-quiet greater-than,
            // so NaN and -0.0 both select the +0.0 arm like the branch.
            Act::Relu => {
                let mask = _mm256_cmp_pd::<_CMP_GT_OQ>(z, zero);
                _mm256_blendv_pd(zero, z, mask)
            }
            // `if z > 0 { z } else { 0.2 * z }` — the product is computed
            // unconditionally and discarded on the taken arm.
            Act::LeakyRelu => {
                let mask = _mm256_cmp_pd::<_CMP_GT_OQ>(z, zero);
                let leak = _mm256_mul_pd(_mm256_set1_pd(0.2), z);
                _mm256_blendv_pd(leak, z, mask)
            }
            Act::Identity => z,
            Act::Tanh | Act::Sigmoid => unreachable!("transcendentals stay scalar"),
        }
    }

    /// # Safety
    /// Caller guarantees AVX2 is available and `bias.len() == cols`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn bias_act_avx2(data: &mut [f64], cols: usize, bias: &[f64], act: Act) {
        let full = cols - cols % 4;
        for row in data.chunks_exact_mut(cols.max(1)) {
            match act {
                Act::Relu | Act::LeakyRelu | Act::Identity => {
                    for j in (0..full).step_by(4) {
                        let z = _mm256_add_pd(
                            _mm256_loadu_pd(row.as_ptr().add(j)),
                            _mm256_loadu_pd(bias.as_ptr().add(j)),
                        );
                        _mm256_storeu_pd(row.as_mut_ptr().add(j), act_lane(act, z));
                    }
                    for j in full..cols {
                        row[j] = act.apply(row[j] + bias[j]);
                    }
                }
                // Transcendentals: vector add epilogue, scalar function.
                Act::Tanh | Act::Sigmoid => {
                    for j in (0..full).step_by(4) {
                        let z = _mm256_add_pd(
                            _mm256_loadu_pd(row.as_ptr().add(j)),
                            _mm256_loadu_pd(bias.as_ptr().add(j)),
                        );
                        _mm256_storeu_pd(row.as_mut_ptr().add(j), z);
                    }
                    for j in full..cols {
                        row[j] += bias[j];
                    }
                    for v in row.iter_mut() {
                        *v = act.apply(*v);
                    }
                }
            }
        }
    }

    /// Lane form of [`Act::deriv_from_output`] — every branch is exact
    /// (compare/blend selection or one or two rounded mul/sub).
    ///
    /// # Safety
    /// Caller guarantees AVX2 is available.
    #[target_feature(enable = "avx2")]
    unsafe fn deriv_lane(act: Act, y: __m256d) -> __m256d {
        let zero = _mm256_setzero_pd();
        let one = _mm256_set1_pd(1.0);
        match act {
            Act::Relu => {
                let mask = _mm256_cmp_pd::<_CMP_GT_OQ>(y, zero);
                _mm256_blendv_pd(zero, one, mask)
            }
            Act::LeakyRelu => {
                let mask = _mm256_cmp_pd::<_CMP_GT_OQ>(y, zero);
                _mm256_blendv_pd(_mm256_set1_pd(0.2), one, mask)
            }
            Act::Tanh => _mm256_sub_pd(one, _mm256_mul_pd(y, y)),
            Act::Sigmoid => _mm256_mul_pd(y, _mm256_sub_pd(one, y)),
            Act::Identity => one,
        }
    }

    /// # Safety
    /// Caller guarantees AVX2 is available and the three slices share a
    /// length.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn act_backward_avx2(y: &[f64], grad: &[f64], dz: &mut [f64], act: Act) {
        let n = y.len();
        let full = n - n % 4;
        for i in (0..full).step_by(4) {
            let yv = _mm256_loadu_pd(y.as_ptr().add(i));
            let gv = _mm256_loadu_pd(grad.as_ptr().add(i));
            let d = deriv_lane(act, yv);
            _mm256_storeu_pd(dz.as_mut_ptr().add(i), _mm256_mul_pd(gv, d));
        }
        for i in full..n {
            dz[i] = grad[i] * act.deriv_from_output(y[i]);
        }
    }

    /// # Safety
    /// Caller guarantees AVX2 is available and the four slices share a
    /// length.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn adam_avx2(
        value: &mut [f64],
        grad: &[f64],
        m: &mut [f64],
        v: &mut [f64],
        lr: f64,
        beta1: f64,
        beta2: f64,
        eps: f64,
        bc1: f64,
        bc2: f64,
    ) {
        let n = value.len();
        let full = n - n % 4;
        let b1 = _mm256_set1_pd(beta1);
        let b2 = _mm256_set1_pd(beta2);
        let omb1 = _mm256_set1_pd(1.0 - beta1);
        let omb2 = _mm256_set1_pd(1.0 - beta2);
        let bc1v = _mm256_set1_pd(bc1);
        let bc2v = _mm256_set1_pd(bc2);
        let lrv = _mm256_set1_pd(lr);
        let epsv = _mm256_set1_pd(eps);
        for i in (0..full).step_by(4) {
            let g = _mm256_loadu_pd(grad.as_ptr().add(i));
            let mv = _mm256_loadu_pd(m.as_ptr().add(i));
            let vv = _mm256_loadu_pd(v.as_ptr().add(i));
            // m = β₁·m + (1-β₁)·g
            let mi = _mm256_add_pd(_mm256_mul_pd(b1, mv), _mm256_mul_pd(omb1, g));
            // v = β₂·v + ((1-β₂)·g)·g — left-to-right like the scalar loop.
            let vi = _mm256_add_pd(_mm256_mul_pd(b2, vv), _mm256_mul_pd(_mm256_mul_pd(omb2, g), g));
            _mm256_storeu_pd(m.as_mut_ptr().add(i), mi);
            _mm256_storeu_pd(v.as_mut_ptr().add(i), vi);
            let m_hat = _mm256_div_pd(mi, bc1v);
            let v_hat = _mm256_div_pd(vi, bc2v);
            let denom = _mm256_add_pd(_mm256_sqrt_pd(v_hat), epsv);
            let update = _mm256_div_pd(_mm256_mul_pd(lrv, m_hat), denom);
            let val = _mm256_loadu_pd(value.as_ptr().add(i));
            _mm256_storeu_pd(value.as_mut_ptr().add(i), _mm256_sub_pd(val, update));
        }
        super::adam_scalar(
            &mut value[full..],
            &grad[full..],
            &mut m[full..],
            &mut v[full..],
            lr,
            beta1,
            beta2,
            eps,
            bc1,
            bc2,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bias_act_matches_naive_all_activations() {
        for act in [Act::Relu, Act::LeakyRelu, Act::Tanh, Act::Sigmoid, Act::Identity] {
            let base: Vec<f64> = (0..23)
                .map(|i| (i as f64 * 0.7 - 7.0) * if i % 3 == 0 { -1.0 } else { 1.0 })
                .collect();
            for cols in [1usize, 3, 4, 7, 8] {
                let rows = base.len() / cols;
                let mut fused = base[..rows * cols].to_vec();
                let mut naive = fused.clone();
                let bias: Vec<f64> = (0..cols).map(|j| j as f64 * 0.31 - 0.4).collect();
                bias_act(&mut fused, rows, cols, &bias, act);
                naive_bias_act(&mut naive, rows, cols, &bias, act);
                let f: Vec<u64> = fused.iter().map(|x| x.to_bits()).collect();
                let n: Vec<u64> = naive.iter().map(|x| x.to_bits()).collect();
                assert_eq!(f, n, "{act:?} cols={cols}");
            }
        }
    }

    #[test]
    fn adam_matches_naive() {
        let n = 13;
        let grad: Vec<f64> = (0..n).map(|i| (i as f64 * 1.3 - 6.0).sin()).collect();
        let mut v1: Vec<f64> = (0..n).map(|i| i as f64 * 0.1).collect();
        let mut m1 = vec![0.02; n];
        let mut s1 = vec![0.5; n];
        let (mut v2, mut m2, mut s2) = (v1.clone(), m1.clone(), s1.clone());
        adam_update(&mut v1, &grad, &mut m1, &mut s1, 1e-3, 0.9, 0.999, 1e-8, 3);
        naive_adam_update(&mut v2, &grad, &mut m2, &mut s2, 1e-3, 0.9, 0.999, 1e-8, 3);
        assert!(v1.iter().zip(&v2).all(|(a, b)| a.to_bits() == b.to_bits()));
        assert!(m1.iter().zip(&m2).all(|(a, b)| a.to_bits() == b.to_bits()));
        assert!(s1.iter().zip(&s2).all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn sgd_matches_add_scaled_path() {
        let grad: Vec<f64> = (0..9).map(|i| (i as f64).cos()).collect();
        let mut fused = vec![1.0; 9];
        let mut reference = fused.clone();
        sgd_update(&mut fused, &grad, 0.05);
        // The historical path: clone the gradient, then add_scaled.
        let cloned = grad.clone();
        for (a, b) in reference.iter_mut().zip(&cloned) {
            *a += b * (-0.05);
        }
        assert!(fused.iter().zip(&reference).all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn outer_acc_skips_zero_rows() {
        let a = [0.0, 2.0];
        let b = [f64::INFINITY, 1.0];
        let mut out = vec![7.0; 4];
        outer_acc(&a, &b, &mut out);
        // Row 0 untouched (zero coefficient masks the infinity), row 1
        // accumulated.
        assert_eq!(out[0], 7.0);
        assert_eq!(out[1], 7.0);
        assert_eq!(out[2], f64::INFINITY);
        assert_eq!(out[3], 9.0);
    }

    #[test]
    fn naive_mode_env_routes_scalar() {
        // Smoke-check the switch parses; full equivalence is pinned by the
        // integration suite (env mutation stays out of parallel unit tests).
        assert!(!NAIVE_ELEMENTWISE_ENV.is_empty());
    }
}
