//! Property-based regression tests for the dense kernel layer: the
//! blocked/SIMD GEMM paths against the retained naive references, the
//! Gram-trick distance kernel against the retained scalar loop (at the
//! 1e-9 relative tolerance the numerics contract pins), and bitwise
//! determinism of the row-block parallel GEMM across thread counts.

use exathlon_linalg::kernel::{
    naive_matmul, naive_matmul_transpose, naive_sq_distance, naive_transpose_matmul, DistanceKernel,
};
use exathlon_linalg::par::THREADS_ENV;
use exathlon_linalg::Matrix;
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes mutations of `EXATHLON_THREADS` within this test binary.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Arbitrary rectangular matrix, dimensions in `[lo, hi)` per axis —
/// `lo = 0` exercises degenerate shapes.
fn arb_matrix(lo: usize, hi: usize) -> impl Strategy<Value = Matrix> {
    (lo..hi, lo..hi).prop_flat_map(|(n, m)| {
        proptest::collection::vec(-100.0f64..100.0, n * m)
            .prop_map(move |data| Matrix::from_vec(n, m, data))
    })
}

/// Feature values laced with NaN and ±∞ — the distance kernel must
/// sanitize these identically to the retained scalar loop. The finite
/// arm is repeated so non-finite values stay rare but present.
fn arb_messy_value() -> impl Strategy<Value = f64> {
    prop_oneof![
        -1e3..1e3f64,
        -1e3..1e3f64,
        -1e3..1e3f64,
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
    ]
}

fn arb_messy_rows(dims: usize, max_rows: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(arb_messy_value(), dims), 1..max_rows)
}

proptest! {
    /// Blocked GEMM is bitwise identical to the naive `i-k-j` loop for
    /// finite inputs: every output element is a single accumulator
    /// walking `k` in ascending order in both, and the naive `a == 0`
    /// skip only elides `±0·b` terms, which cannot change a
    /// round-to-nearest partial sum that starts at `+0.0`.
    #[test]
    fn matmul_is_bitwise_naive(a in arb_matrix(0, 24), b_cols in 0usize..24,
                               seed in proptest::collection::vec(-50.0f64..50.0, 0..600)) {
        let k = a.cols();
        prop_assume!(seed.len() >= k * b_cols);
        let b = Matrix::from_vec(k, b_cols, seed[..k * b_cols].to_vec());
        let fast = a.matmul(&b);
        let slow = naive_matmul(&a, &b);
        prop_assert_eq!(fast.shape(), slow.shape());
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "{} vs {}", x, y);
        }
    }

    /// `A·Bᵀ` (with or without the SIMD transpose-then-`A·B` rewrite)
    /// is bitwise identical to the naive explicit-transpose product.
    #[test]
    fn matmul_transpose_is_bitwise_naive(a in arb_matrix(0, 20), b_rows in 0usize..20,
                                         seed in proptest::collection::vec(-50.0f64..50.0, 0..500)) {
        let k = a.cols();
        prop_assume!(seed.len() >= k * b_rows);
        let b = Matrix::from_vec(b_rows, k, seed[..b_rows * k].to_vec());
        let fast = a.matmul_transpose(&b);
        let slow = naive_matmul_transpose(&a, &b);
        prop_assert_eq!(fast.shape(), slow.shape());
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "{} vs {}", x, y);
        }
    }

    /// `Aᵀ·B` is bitwise identical to the naive explicit-transpose
    /// product (the dense-backprop / covariance shape).
    #[test]
    fn transpose_matmul_is_bitwise_naive(a in arb_matrix(0, 20), b_cols in 0usize..20,
                                         seed in proptest::collection::vec(-50.0f64..50.0, 0..500)) {
        let k = a.rows();
        prop_assume!(seed.len() >= k * b_cols);
        let b = Matrix::from_vec(k, b_cols, seed[..k * b_cols].to_vec());
        let fast = a.transpose_matmul(&b);
        let slow = naive_transpose_matmul(&a, &b);
        prop_assert_eq!(fast.shape(), slow.shape());
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "{} vs {}", x, y);
        }
    }

    /// Blocked transpose round-trips and matches the naive index swap.
    #[test]
    fn transpose_matches_naive(a in arb_matrix(0, 40)) {
        let t = a.transpose();
        prop_assert_eq!(t.shape(), (a.cols(), a.rows()));
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                prop_assert_eq!(a[(i, j)].to_bits(), t[(j, i)].to_bits());
            }
        }
        let back = t.transpose();
        prop_assert_eq!(back.as_slice(), a.as_slice());
    }

    /// Gram-trick batched distances agree with the retained scalar loop
    /// within 1e-9 relative error, including on NaN/∞-laden inputs
    /// (both paths sanitize with the same rule).
    #[test]
    fn distance_kernel_matches_scalar(sets in (1usize..8).prop_flat_map(|d| {
        (arb_messy_rows(d, 20), arb_messy_rows(d, 12))
    })) {
        let (refs, queries) = sets;
        let kernel = DistanceKernel::fit(&refs);
        let batched = kernel.sq_distances(&queries);
        prop_assert_eq!(batched.shape(), (queries.len(), refs.len()));
        for (i, q) in queries.iter().enumerate() {
            for (j, r) in refs.iter().enumerate() {
                let scalar = naive_sq_distance(q, r);
                let fast = batched[(i, j)];
                let tol = 1e-9 * scalar.abs().max(1.0);
                prop_assert!((fast - scalar).abs() <= tol,
                    "distance ({i},{j}): batched {fast} vs scalar {scalar}");
            }
        }
    }

    /// The reference set's self-distance matrix is consistent with
    /// querying the references back through the batched path.
    #[test]
    fn self_distances_match_query_path(refs in (1usize..6).prop_flat_map(|d| arb_messy_rows(d, 14))) {
        let kernel = DistanceKernel::fit(&refs);
        let self_d = kernel.self_sq_distances();
        let query_d = kernel.sq_distances(&refs);
        prop_assert_eq!(self_d.shape(), query_d.shape());
        for (x, y) in self_d.as_slice().iter().zip(query_d.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}

/// Degenerate and boundary shapes the blocked loops must not mishandle:
/// empty `k`, 1×1, single-row/column, and sizes straddling every tile
/// edge (4/8/16-wide SIMD tiles, 64-row parallel blocks).
#[test]
fn gemm_edge_shapes_match_naive() {
    let shapes = [
        (1, 1, 1),
        (1, 1, 0),
        (0, 4, 3),
        (4, 0, 3),
        (5, 7, 0),
        (1, 33, 9),
        (129, 1, 5),
        (67, 41, 23),
    ];
    for (m, n, k) in shapes {
        let a = Matrix::from_fn(m, k, |i, j| ((i * 31 + j * 7) % 13) as f64 - 6.0);
        let b = Matrix::from_fn(k, n, |i, j| ((i * 17 + j * 3) % 11) as f64 - 5.0);
        let fast = a.matmul(&b);
        let slow = naive_matmul(&a, &b);
        assert_eq!(fast.shape(), slow.shape(), "shape for {m}x{k}x{n}");
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{m}x{k}x{n}: {x} vs {y}");
        }
    }
}

/// Row-block parallel GEMM must be bitwise identical to the
/// single-threaded kernel for every thread count: the decomposition is
/// fixed-size blocks joined in input order, never derived from the
/// worker count.
#[test]
fn parallel_gemm_is_bitwise_deterministic() {
    let _guard = ENV_LOCK.lock().unwrap();
    // Big enough to take the parallel path (m ≥ 2 row blocks, ≥ 128k flop).
    let a = Matrix::from_fn(200, 48, |i, j| ((i * 13 + j * 29) % 101) as f64 * 0.37 - 18.0);
    let b = Matrix::from_fn(48, 96, |i, j| ((i * 41 + j * 11) % 97) as f64 * 0.21 - 10.0);
    let prev = std::env::var(THREADS_ENV).ok();
    let mut results = Vec::new();
    for threads in ["1", "2", "8"] {
        std::env::set_var(THREADS_ENV, threads);
        results.push(a.matmul(&b));
    }
    match prev {
        Some(v) => std::env::set_var(THREADS_ENV, v),
        None => std::env::remove_var(THREADS_ENV),
    }
    let baseline = &results[0];
    for (idx, r) in results.iter().enumerate().skip(1) {
        assert_eq!(r.shape(), baseline.shape());
        for (x, y) in r.as_slice().iter().zip(baseline.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "thread-count run {idx} diverged: {x} vs {y}");
        }
    }
}
