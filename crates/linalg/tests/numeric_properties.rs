//! Property-based tests on the numeric core: linear-algebra identities
//! and statistics invariants for arbitrary inputs.

use exathlon_linalg::eigen::{covariance_matrix, symmetric_eigen};
use exathlon_linalg::pca::{ComponentSelection, Pca};
use exathlon_linalg::stats::{entropy, iqr, mad, mean, median, quantile, std_dev};
use exathlon_linalg::Matrix;
use proptest::prelude::*;

fn arb_matrix(max_n: usize, max_m: usize) -> impl Strategy<Value = Matrix> {
    (1..max_n, 1..max_m).prop_flat_map(|(n, m)| {
        proptest::collection::vec(-100.0f64..100.0, n * m)
            .prop_map(move |data| Matrix::from_vec(n, m, data))
    })
}

proptest! {
    /// (A B)^T = B^T A^T.
    #[test]
    fn transpose_of_product(a in arb_matrix(6, 5), b_data in proptest::collection::vec(-10.0f64..10.0, 30)) {
        let k = a.cols();
        let cols = b_data.len() / k;
        prop_assume!(cols > 0);
        let b = Matrix::from_vec(k, cols, b_data[..k * cols].to_vec());
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    /// Matrix-vector multiply agrees with matmul against a column vector.
    #[test]
    fn matvec_consistency(a in arb_matrix(6, 6)) {
        let v: Vec<f64> = (0..a.cols()).map(|j| (j as f64 * 0.7).sin()).collect();
        let fast = a.matvec(&v);
        let slow = a.matmul(&Matrix::col_vector(&v)).col(0);
        for (x, y) in fast.iter().zip(&slow) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    /// Eigendecomposition reconstructs symmetric matrices and preserves
    /// the trace.
    #[test]
    fn eigen_reconstruction(m in arb_matrix(5, 5)) {
        prop_assume!(m.rows() == m.cols());
        let n = m.rows();
        let sym = Matrix::from_fn(n, n, |i, j| 0.5 * (m[(i, j)] + m[(j, i)]));
        let e = symmetric_eigen(&sym, 100, 1e-12);
        let d = Matrix::from_fn(n, n, |i, j| if i == j { e.values[i] } else { 0.0 });
        let recon = e.vectors.matmul(&d).matmul(&e.vectors.transpose());
        let scale = sym.max_abs().max(1.0);
        for (x, y) in recon.as_slice().iter().zip(sym.as_slice()) {
            prop_assert!((x - y).abs() < 1e-6 * scale, "{x} vs {y}");
        }
        let trace: f64 = (0..n).map(|i| sym[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-6 * scale);
    }

    /// Covariance matrices are positive semi-definite (all eigenvalues
    /// >= 0 up to numerics).
    #[test]
    fn covariance_is_psd(data in arb_matrix(12, 4)) {
        let cov = covariance_matrix(&data);
        let e = symmetric_eigen(&cov, 100, 1e-12);
        for &v in &e.values {
            prop_assert!(v > -1e-6 * cov.max_abs().max(1.0), "negative eigenvalue {v}");
        }
    }

    /// PCA with full components reconstructs every training row.
    #[test]
    fn pca_full_rank_roundtrip(data in arb_matrix(10, 4)) {
        prop_assume!(data.rows() >= 2);
        let pca = Pca::fit(&data, ComponentSelection::Fixed(data.cols()));
        for row in data.iter_rows() {
            let z = pca.transform_row(row);
            let back = pca.inverse_transform_row(&z);
            let scale = data.max_abs().max(1.0);
            for (a, b) in row.iter().zip(&back) {
                prop_assert!((a - b).abs() < 1e-6 * scale, "{a} vs {b}");
            }
        }
    }

    /// Quantiles are monotone in q and bracketed by min/max.
    #[test]
    fn quantiles_monotone(xs in proptest::collection::vec(-1e4f64..1e4, 1..60)) {
        let q25 = quantile(&xs, 0.25);
        let q50 = quantile(&xs, 0.5);
        let q75 = quantile(&xs, 0.75);
        prop_assert!(q25 <= q50 && q50 <= q75);
        prop_assert_eq!(median(&xs), q50);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(lo <= q25 && q75 <= hi);
    }

    /// Mean/std shift-invariance: std is unchanged by a constant shift,
    /// mean shifts by it.
    #[test]
    fn shift_invariance(xs in proptest::collection::vec(-1e3f64..1e3, 2..50), c in -1e3f64..1e3) {
        let shifted: Vec<f64> = xs.iter().map(|x| x + c).collect();
        prop_assert!((mean(&shifted) - mean(&xs) - c).abs() < 1e-6);
        prop_assert!((std_dev(&shifted) - std_dev(&xs)).abs() < 1e-6);
        prop_assert!((mad(&shifted) - mad(&xs)).abs() < 1e-6);
    }

    /// Entropy is maximal for uniform weights.
    #[test]
    fn entropy_maximal_at_uniform(weights in proptest::collection::vec(0.1f64..10.0, 2..10)) {
        let k = weights.len();
        let uniform = vec![1.0; k];
        prop_assert!(entropy(&weights) <= entropy(&uniform) + 1e-9);
        prop_assert!((entropy(&uniform) - (k as f64).log2()).abs() < 1e-9);
    }

    /// Non-finite contamination is invisible: sprinkling ±inf and NaN
    /// into a sample must leave every statistic the threshold rules read
    /// (mean/std, median/MAD, Q3/IQR) bitwise identical to the clean
    /// sample's — and therefore finite. An inf that leaked through any of
    /// these used to turn `S1 + c*S2` into an inf or NaN threshold.
    #[test]
    fn stats_ignore_non_finite_contamination(
        xs in proptest::collection::vec(-1e6f64..1e6, 1..50),
        // Where and what to inject: index (modulo len+1) and a selector
        // over {+inf, -inf, NaN}.
        injections in proptest::collection::vec((0usize..64, 0u8..3), 1..12),
    ) {
        let mut dirty = xs.clone();
        for &(at, kind) in &injections {
            let v = match kind {
                0 => f64::INFINITY,
                1 => f64::NEG_INFINITY,
                _ => f64::NAN,
            };
            let at = at % (dirty.len() + 1);
            dirty.insert(at, v);
        }
        for (name, clean, poisoned) in [
            ("mean", mean(&xs), mean(&dirty)),
            ("std_dev", std_dev(&xs), std_dev(&dirty)),
            ("median", median(&xs), median(&dirty)),
            ("mad", mad(&xs), mad(&dirty)),
            ("iqr", iqr(&xs), iqr(&dirty)),
            ("q3", quantile(&xs, 0.75), quantile(&dirty, 0.75)),
        ] {
            prop_assert!(poisoned.is_finite(), "{} went non-finite: {}", name, poisoned);
            prop_assert_eq!(clean.to_bits(), poisoned.to_bits(), "{} changed under contamination", name);
        }
        // The composed threshold rules stay finite on the dirty scores.
        let thr_mean_std = mean(&dirty) + 3.0 * std_dev(&dirty);
        let thr_med_mad = median(&dirty) + 3.0 * mad(&dirty);
        let thr_q3_iqr = quantile(&dirty, 0.75) + 3.0 * iqr(&dirty);
        prop_assert!(thr_mean_std.is_finite() && thr_med_mad.is_finite() && thr_q3_iqr.is_finite());
    }

    /// A histogram of a contaminated sample equals the clean histogram:
    /// same range, same counts, nothing clamp-counted into edge bins.
    #[test]
    fn histogram_invariant_under_non_finite_contamination(
        xs in proptest::collection::vec(-1e3f64..1e3, 2..40),
        bins in 1usize..16,
        injections in proptest::collection::vec((0usize..64, 0u8..3), 1..8),
    ) {
        let mut dirty = xs.clone();
        for &(at, kind) in &injections {
            let v = match kind {
                0 => f64::INFINITY,
                1 => f64::NEG_INFINITY,
                _ => f64::NAN,
            };
            let at = at % (dirty.len() + 1);
            dirty.insert(at, v);
        }
        let clean_h = exathlon_linalg::stats::Histogram::from_data(&xs, bins);
        let dirty_h = exathlon_linalg::stats::Histogram::from_data(&dirty, bins);
        prop_assert_eq!(clean_h.range(), dirty_h.range());
        prop_assert_eq!(clean_h.counts(), dirty_h.counts());
        prop_assert_eq!(dirty_h.total(), xs.len());
    }
}
