//! Property-based regression tests for the fused elementwise layer and
//! the `*_into` GEMM variants: every fused/SIMD path must be bitwise
//! identical to its retained naive reference across arbitrary shapes —
//! including degenerate ones (empty buffers, zero rows, zero cols) —
//! and across special values (±0, subnormals, NaN, ±∞ where the
//! contract covers them).

use exathlon_linalg::elemwise::{
    self, naive_accumulate, naive_act_backward, naive_adam_update, naive_axpy, naive_bias_act,
    naive_outer_acc, naive_scale, naive_sgd_update, Act,
};
use exathlon_linalg::kernel;
use exathlon_linalg::Matrix;
use proptest::prelude::*;

const ACTS: [Act; 5] = [Act::Relu, Act::LeakyRelu, Act::Tanh, Act::Sigmoid, Act::Identity];

/// Values laced with signed zeros and subnormals — the cases where a
/// branch-shaped SIMD rewrite (blendv vs `if`) could drift from the
/// scalar expression without a plain-magnitude test noticing.
fn arb_value() -> impl Strategy<Value = f64> {
    prop_oneof![
        -50.0f64..50.0,
        -50.0f64..50.0,
        -1e-3f64..1e-3,
        Just(0.0),
        Just(-0.0),
        Just(f64::MIN_POSITIVE / 2.0),
        Just(-f64::MIN_POSITIVE / 2.0),
    ]
}

fn arb_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(arb_value(), 0..max_len)
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    /// `bias_act` (SIMD or not) matches the scalar reference bitwise for
    /// every activation, including empty and single-column shapes.
    #[test]
    fn bias_act_is_bitwise_naive(rows in 0usize..12, cols in 0usize..20,
                                 seed in proptest::collection::vec(arb_value(), 0..260)) {
        prop_assume!(seed.len() >= rows * cols + cols);
        let bias = &seed[..cols];
        for act in ACTS {
            let mut fast = seed[cols..cols + rows * cols].to_vec();
            let mut slow = fast.clone();
            elemwise::bias_act(&mut fast, rows, cols, bias, act);
            naive_bias_act(&mut slow, rows, cols, bias, act);
            prop_assert_eq!(bits(&fast), bits(&slow), "act {:?}", act);
        }
    }

    /// `act_backward` matches the scalar derivative-then-multiply pair
    /// bitwise for every activation.
    #[test]
    fn act_backward_is_bitwise_naive(y in arb_vec(64), seed in arb_vec(64)) {
        prop_assume!(seed.len() >= y.len());
        let grad = &seed[..y.len()];
        for act in ACTS {
            let mut fast = vec![0.0; y.len()];
            let mut slow = vec![0.0; y.len()];
            elemwise::act_backward(&y, grad, &mut fast, act);
            naive_act_backward(&y, grad, &mut slow, act);
            prop_assert_eq!(bits(&fast), bits(&slow), "act {:?}", act);
        }
    }

    /// `accumulate`, `axpy` and `scale` match their scalar loops bitwise.
    #[test]
    fn vector_ops_are_bitwise_naive(x in arb_vec(96), seed in arb_vec(96), alpha in arb_value()) {
        prop_assume!(seed.len() >= x.len());
        let y0 = &seed[..x.len()];

        let mut fast = y0.to_vec();
        let mut slow = y0.to_vec();
        elemwise::accumulate(&mut fast, &x);
        naive_accumulate(&mut slow, &x);
        prop_assert_eq!(bits(&fast), bits(&slow));

        let mut fast = y0.to_vec();
        let mut slow = y0.to_vec();
        elemwise::axpy(alpha, &x, &mut fast);
        naive_axpy(alpha, &x, &mut slow);
        prop_assert_eq!(bits(&fast), bits(&slow));

        let mut fast = x.clone();
        let mut slow = x.clone();
        elemwise::scale(&mut fast, alpha);
        naive_scale(&mut slow, alpha);
        prop_assert_eq!(bits(&fast), bits(&slow));
    }

    /// `outer_acc` matches the scalar rank-1 accumulation bitwise,
    /// including the `a[i] == 0.0` row-skip (which must also skip for
    /// `-0.0`, like `Matrix::outer`).
    #[test]
    fn outer_acc_is_bitwise_naive(a in arb_vec(16), seed in arb_vec(16)) {
        let b = seed;
        let mut fast = vec![0.1f64; a.len() * b.len()];
        let mut slow = fast.clone();
        elemwise::outer_acc(&a, &b, &mut fast);
        naive_outer_acc(&a, &b, &mut slow);
        prop_assert_eq!(bits(&fast), bits(&slow));
    }

    /// The fused SGD and Adam updates match the scalar references
    /// bitwise, moments included, across step counts.
    #[test]
    fn optimizer_updates_are_bitwise_naive(value in arb_vec(80), seed in arb_vec(80),
                                           lr in 1e-5f64..0.5, t in 1u64..200) {
        prop_assume!(seed.len() >= value.len());
        let grad = &seed[..value.len()];

        let mut fast = value.clone();
        let mut slow = value.clone();
        elemwise::sgd_update(&mut fast, grad, lr);
        naive_sgd_update(&mut slow, grad, lr);
        prop_assert_eq!(bits(&fast), bits(&slow));

        let (mut fv, mut fm, mut fvv) = (value.clone(), vec![0.01; value.len()], vec![0.02; value.len()]);
        let (mut sv, mut sm, mut svv) = (value.clone(), fm.clone(), fvv.clone());
        elemwise::adam_update(&mut fv, grad, &mut fm, &mut fvv, lr, 0.9, 0.999, 1e-8, t);
        naive_adam_update(&mut sv, grad, &mut sm, &mut svv, lr, 0.9, 0.999, 1e-8, t);
        prop_assert_eq!(bits(&fv), bits(&sv), "value");
        prop_assert_eq!(bits(&fm), bits(&sm), "first moment");
        prop_assert_eq!(bits(&fvv), bits(&svv), "second moment");
    }

    /// The workspace-reusing `*_into` GEMM/matvec variants are bitwise
    /// identical to their allocating counterparts even when the output
    /// buffers arrive dirty and wrongly shaped.
    #[test]
    fn into_variants_match_allocating_bitwise(rows in 0usize..10, k in 0usize..10,
                                              cols in 0usize..10,
                                              seed in proptest::collection::vec(-40.0f64..40.0, 0..300)) {
        prop_assume!(seed.len() >= rows * k + k * cols + k);
        let a = Matrix::from_vec(rows, k, seed[..rows * k].to_vec());
        let b = Matrix::from_vec(k, cols, seed[rows * k..rows * k + k * cols].to_vec());
        let v = &seed[rows * k + k * cols..rows * k + k * cols + k];

        let mut out = Matrix::from_vec(1, 2, vec![7.0, 7.0]); // dirty, wrong shape
        kernel::matmul_into(&a, &b, &mut out);
        let reference = a.matmul(&b);
        prop_assert_eq!(bits(out.as_slice()), bits(reference.as_slice()));

        let bt_src = b.transpose(); // A·(Bᵀ)ᵀ = A·B via the transpose kernel
        let mut bt = Matrix::from_vec(1, 1, vec![3.0]);
        let mut out = Matrix::from_vec(2, 1, vec![5.0, 5.0]);
        kernel::matmul_transpose_into(&a, &bt_src, &mut bt, &mut out);
        let reference = a.matmul_transpose(&bt_src);
        prop_assert_eq!(bits(out.as_slice()), bits(reference.as_slice()));

        let at = a.transpose();
        let mut out = Matrix::from_vec(1, 1, vec![9.0]);
        kernel::transpose_matmul_into(&at, &b, &mut out);
        let reference = at.transpose_matmul(&b);
        prop_assert_eq!(bits(out.as_slice()), bits(reference.as_slice()));

        let mut out = vec![4.0; 3]; // dirty, wrong length
        kernel::matvec_into(&a, v, &mut out);
        prop_assert_eq!(bits(&out), bits(&a.matvec(v)));

        let va: Vec<f64> = (0..rows).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut out = vec![6.0; 5];
        kernel::transpose_matvec_into(&a, &va, &mut out);
        prop_assert_eq!(bits(&out), bits(&a.transpose_matvec(&va)));
    }
}
