//! # exathlon-nn
//!
//! A from-scratch neural-network substrate for the Exathlon benchmark's
//! deep-learning AD methods (§6.1, Appendix D.2): the LSTM forecaster, the
//! dense autoencoder, and the BiGAN.
//!
//! The paper trains its models with Keras/TensorFlow; Rust has no
//! comparable offline-available stack, so this crate implements the needed
//! subset directly on [`exathlon_linalg::Matrix`]:
//!
//! * [`param`] — trainable parameters with gradient and Adam moment state,
//! * [`activation`] — ReLU / leaky ReLU / tanh / sigmoid and derivatives,
//! * [`dense`] — fully-connected layers with explicit backprop,
//! * [`loss`] — MSE and binary cross-entropy with gradients,
//! * [`optimizer`] — SGD and Adam,
//! * [`mlp`] — a sequential multi-layer perceptron (used by the
//!   autoencoder and the BiGAN's three networks),
//! * [`lstm`] — a single-layer LSTM with truncated BPTT and a linear
//!   readout (the forecaster),
//! * [`gan`] — the bidirectional GAN: encoder, generator, discriminator,
//!   adversarial training, and the reconstruction + feature-loss outlier
//!   score of Zenati et al. that the paper adopts.
//!
//! Networks here are deliberately small: the benchmark's findings depend on
//! the *shape* of the outlier scores each model family produces (spiky
//! forecast errors vs. smooth window reconstruction errors), not on
//! large-model accuracy.

pub mod activation;
pub mod dense;
pub mod gan;
pub mod loss;
pub mod lstm;
pub mod mlp;
pub mod optimizer;
pub mod param;

pub use mlp::Mlp;
