//! Bidirectional GAN (BiGAN) for reconstruction-based anomaly detection.
//!
//! Following the paper's Appendix D.2: a generator `G: z -> x`, an encoder
//! `E: x -> z` learned jointly (Donahue et al.), and a discriminator `D`
//! over `(x, z)` pairs. At test time the outlier score of a window is the
//! average of its reconstruction error through `(E, G)` and its feature
//! loss under `D`, as defined by Zenati et al. (Efficient GAN-based AD).

use crate::activation::Activation;
use crate::dense::Dense;
use crate::loss::{bce, bce_grad, row_squared_errors};
use crate::mlp::Mlp;
use crate::optimizer::Optimizer;
use exathlon_linalg::Matrix;
use rand::rngs::StdRng;
use rand::Rng;

/// A trained (or training) BiGAN.
#[derive(Debug, Clone)]
pub struct BiGan {
    /// Encoder `x -> z`.
    encoder: Mlp,
    /// Generator `z -> x`.
    generator: Mlp,
    /// Discriminator feature extractor over `(x, z)` pairs.
    d_features: Mlp,
    /// Discriminator head: features -> probability.
    d_head: Dense,
    in_dim: usize,
    latent: usize,
    /// Global step counter for the discriminator head's Adam state.
    step: u64,
}

/// Losses from one adversarial training step.
#[derive(Debug, Clone, Copy)]
pub struct GanLosses {
    /// Discriminator loss (BCE on real + fake pairs).
    pub d_loss: f64,
    /// Encoder+generator adversarial loss.
    pub eg_loss: f64,
}

impl BiGan {
    /// Build a BiGAN for `in_dim` inputs with `latent` latent units and the
    /// given hidden width for all three networks.
    pub fn new(in_dim: usize, latent: usize, hidden: usize, rng: &mut StdRng) -> Self {
        let encoder = Mlp::new(
            &[(in_dim, hidden, Activation::LeakyRelu), (hidden, latent, Activation::Identity)],
            rng,
        );
        let generator = Mlp::new(
            &[(latent, hidden, Activation::LeakyRelu), (hidden, in_dim, Activation::Identity)],
            rng,
        );
        let d_features = Mlp::new(
            &[
                (in_dim + latent, hidden, Activation::LeakyRelu),
                (hidden, hidden / 2, Activation::LeakyRelu),
            ],
            rng,
        );
        let d_head = Dense::new(hidden / 2, 1, Activation::Sigmoid, rng);
        Self { encoder, generator, d_features, d_head, in_dim, latent, step: 0 }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Latent dimensionality.
    pub fn latent_dim(&self) -> usize {
        self.latent
    }

    fn concat(x: &Matrix, z: &Matrix) -> Matrix {
        assert_eq!(x.rows(), z.rows(), "pair batch mismatch");
        // Straight into the output buffer — the per-row `Vec` staging this
        // replaced doubled the copy for every discriminator input batch.
        let mut out = Matrix::zeros(x.rows(), x.cols() + z.cols());
        for i in 0..x.rows() {
            let row = out.row_mut(i);
            row[..x.cols()].copy_from_slice(x.row(i));
            row[x.cols()..].copy_from_slice(z.row(i));
        }
        out
    }

    fn split_grad(&self, g: &Matrix) -> (Matrix, Matrix) {
        let gx = g.select_cols(&(0..self.in_dim).collect::<Vec<_>>());
        let gz = g.select_cols(&(self.in_dim..self.in_dim + self.latent).collect::<Vec<_>>());
        (gx, gz)
    }

    /// Discriminator probability for a batch of `(x, z)` pairs (inference).
    pub fn discriminate(&self, x: &Matrix, z: &Matrix) -> Matrix {
        let f = self.d_features.predict(&Self::concat(x, z));
        self.d_head.forward_inference(&f)
    }

    /// Discriminator feature vector for a batch of `(x, z)` pairs.
    pub fn features(&self, x: &Matrix, z: &Matrix) -> Matrix {
        self.d_features.predict(&Self::concat(x, z))
    }

    /// Encode a batch.
    pub fn encode(&self, x: &Matrix) -> Matrix {
        self.encoder.predict(x)
    }

    /// Generate a batch from latent codes.
    pub fn generate(&self, z: &Matrix) -> Matrix {
        self.generator.predict(z)
    }

    /// Reconstruct a batch through encoder then generator.
    pub fn reconstruct(&self, x: &Matrix) -> Matrix {
        self.generate(&self.encode(x))
    }

    /// One adversarial training step on a batch of real samples.
    pub fn train_batch(&mut self, x: &Matrix, opt: &Optimizer, rng: &mut StdRng) -> GanLosses {
        let n = x.rows();
        let z = Matrix::from_fn(n, self.latent, |_, _| rng.gen_range(-1.0..1.0));
        let ones = Matrix::filled(n, 1, 1.0);
        let zeros = Matrix::filled(n, 1, 0.0);

        // --- Discriminator step: real (x, E(x)) -> 1, fake (G(z), z) -> 0.
        let e_x = self.encoder.predict(x);
        let g_z = self.generator.predict(&z);
        self.d_features.zero_grad();
        self.d_head.zero_grad();
        let mut d_loss = 0.0;
        for (input, target) in [(Self::concat(x, &e_x), &ones), (Self::concat(&g_z, &z), &zeros)] {
            let f = self.d_features.forward(&input);
            let p = self.d_head.forward(&f);
            d_loss += bce(&p, target);
            let g = self.d_head.backward(&bce_grad(&p, target));
            let _ = self.d_features.backward(&g);
        }
        self.d_features.apply_step(opt);
        self.step += 1;
        {
            let step = self.step;
            let mut head_params = self.d_head.params_mut();
            opt.step(&mut head_params, step);
        }

        // --- Encoder+generator step: swap labels to fool D.
        self.encoder.zero_grad();
        self.generator.zero_grad();
        let mut eg_loss = 0.0;

        // Real pair should look fake to D: gradient flows into E via z slot.
        let e_x = self.encoder.forward(x);
        {
            self.d_features.zero_grad();
            self.d_head.zero_grad();
            let f = self.d_features.forward(&Self::concat(x, &e_x));
            let p = self.d_head.forward(&f);
            eg_loss += bce(&p, &zeros);
            let g = self.d_head.backward(&bce_grad(&p, &zeros));
            let g_in = self.d_features.backward(&g);
            let (_, gz) = self.split_grad(&g_in);
            let _ = self.encoder.backward(&gz);
        }
        // Fake pair should look real to D: gradient flows into G via x slot.
        let g_z = self.generator.forward(&z);
        {
            self.d_features.zero_grad();
            self.d_head.zero_grad();
            let f = self.d_features.forward(&Self::concat(&g_z, &z));
            let p = self.d_head.forward(&f);
            eg_loss += bce(&p, &ones);
            let g = self.d_head.backward(&bce_grad(&p, &ones));
            let g_in = self.d_features.backward(&g);
            let (gx, _) = self.split_grad(&g_in);
            let _ = self.generator.backward(&gx);
        }
        // Discard the D gradients accumulated while backpropagating through
        // it; only E and G update here.
        self.d_features.zero_grad();
        self.d_head.zero_grad();
        self.encoder.apply_step(opt);
        self.generator.apply_step(opt);

        GanLosses { d_loss: d_loss / 2.0, eg_loss: eg_loss / 2.0 }
    }

    /// Train for `epochs` over the rows of `data` with shuffled
    /// minibatches; returns the last epoch's losses.
    pub fn fit(
        &mut self,
        data: &Matrix,
        epochs: usize,
        batch_size: usize,
        opt: &Optimizer,
        rng: &mut StdRng,
    ) -> GanLosses {
        use rand::seq::SliceRandom;
        assert!(batch_size > 0, "batch size must be positive");
        let mut order: Vec<usize> = (0..data.rows()).collect();
        let mut last = GanLosses { d_loss: f64::NAN, eg_loss: f64::NAN };
        // Reused minibatch scratch, as in `Mlp::fit`.
        let mut xb = Matrix::zeros(0, 0);
        for _ in 0..epochs {
            order.shuffle(rng);
            for chunk in order.chunks(batch_size) {
                data.select_rows_into(chunk, &mut xb);
                last = self.train_batch(&xb, opt, rng);
            }
        }
        last
    }

    /// The Zenati et al. outlier score for each row of `x`: the average of
    /// the `(E, G)` reconstruction error and the discriminator feature loss
    /// between the input pair and its reconstruction pair.
    pub fn outlier_scores(&self, x: &Matrix) -> Vec<f64> {
        let z = self.encode(x);
        let recon = self.generate(&z);
        let rec_err = row_squared_errors(&recon, x);
        let f_real = self.features(x, &z);
        let f_recon = self.features(&recon, &z);
        let feat_err = row_squared_errors(&f_recon, &f_real);
        rec_err.iter().zip(&feat_err).map(|(r, f)| 0.5 * r + 0.5 * f).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(31)
    }

    /// Normal data: points near the line x1 = x0 in [0, 1].
    fn normal_batch(n: usize, rng: &mut StdRng) -> Matrix {
        Matrix::from_rows(
            &(0..n)
                .map(|_| {
                    let t: f64 = rng.gen_range(0.0..1.0);
                    vec![t, t + rng.gen_range(-0.05..0.05)]
                })
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn shapes() {
        let gan = BiGan::new(4, 2, 8, &mut rng());
        assert_eq!(gan.in_dim(), 4);
        assert_eq!(gan.latent_dim(), 2);
        let x = Matrix::from_vec(3, 4, vec![0.1; 12]);
        let z = gan.encode(&x);
        assert_eq!(z.shape(), (3, 2));
        let r = gan.reconstruct(&x);
        assert_eq!(r.shape(), (3, 4));
        let p = gan.discriminate(&x, &z);
        assert_eq!(p.shape(), (3, 1));
        assert!(p.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn training_step_returns_finite_losses() {
        let mut r = rng();
        let mut gan = BiGan::new(2, 2, 8, &mut r);
        let x = normal_batch(16, &mut r);
        let losses = gan.train_batch(&x, &Optimizer::adam(0.001), &mut r);
        assert!(losses.d_loss.is_finite());
        assert!(losses.eg_loss.is_finite());
    }

    #[test]
    fn anomalies_score_higher_after_training() {
        let mut r = rng();
        let mut gan = BiGan::new(2, 1, 16, &mut r);
        let train = normal_batch(256, &mut r);
        gan.fit(&train, 60, 32, &Optimizer::adam(0.002), &mut r);

        let normal = normal_batch(50, &mut r);
        let anomalous = Matrix::from_rows(
            &(0..50)
                .map(|_| {
                    let t: f64 = r.gen_range(0.0..1.0);
                    vec![t, 3.0 + t] // far off the manifold
                })
                .collect::<Vec<_>>(),
        );
        let sn: f64 = gan.outlier_scores(&normal).iter().sum::<f64>() / 50.0;
        let sa: f64 = gan.outlier_scores(&anomalous).iter().sum::<f64>() / 50.0;
        assert!(sa > sn * 1.5, "anomalies should score higher: normal {sn} vs anomalous {sa}");
    }

    #[test]
    fn reconstruction_tracks_training_data() {
        let mut r = rng();
        let mut gan = BiGan::new(2, 1, 16, &mut r);
        let train = normal_batch(256, &mut r);
        gan.fit(&train, 60, 32, &Optimizer::adam(0.002), &mut r);
        let x = normal_batch(20, &mut r);
        let recon = gan.reconstruct(&x);
        let err: f64 = row_squared_errors(&recon, &x).iter().sum::<f64>() / 20.0;
        assert!(err < 1.0, "reconstruction error too high: {err}");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut r = StdRng::seed_from_u64(77);
            let mut gan = BiGan::new(2, 1, 8, &mut r);
            let x = normal_batch(32, &mut r);
            let l = gan.train_batch(&x, &Optimizer::adam(0.001), &mut r);
            (l.d_loss, l.eg_loss)
        };
        assert_eq!(run(), run());
    }
}
