//! Bidirectional GAN (BiGAN) for reconstruction-based anomaly detection.
//!
//! Following the paper's Appendix D.2: a generator `G: z -> x`, an encoder
//! `E: x -> z` learned jointly (Donahue et al.), and a discriminator `D`
//! over `(x, z)` pairs. At test time the outlier score of a window is the
//! average of its reconstruction error through `(E, G)` and its feature
//! loss under `D`, as defined by Zenati et al. (Efficient GAN-based AD).
//!
//! Training stages every per-batch intermediate — latent draws, label
//! matrices, pair concatenations and split gradients — in a reusable
//! [`GanWorkspace`], so steady-state steps stop allocating. The
//! historical allocating step is retained verbatim as the
//! `EXATHLON_NAIVE_ELEMENTWISE=1` reference; both paths consume the same
//! RNG stream and evaluate the same expressions in the same order, so
//! they are bitwise identical.

use crate::activation::Activation;
use crate::dense::Dense;
use crate::loss::{bce, bce_grad, bce_grad_into, row_squared_errors};
use crate::mlp::Mlp;
use crate::optimizer::Optimizer;
use exathlon_linalg::elemwise::naive_elementwise_mode;
use exathlon_linalg::{obs, Matrix};
use rand::rngs::StdRng;
use rand::Rng;

/// Reused per-batch buffers for the fused training step, sized once per
/// batch shape and reused across minibatches and epochs.
#[derive(Debug, Clone, Default)]
struct GanWorkspace {
    /// Latent draws, `n x latent`.
    z: Matrix,
    /// All-ones labels, `n x 1`.
    ones: Matrix,
    /// All-zeros labels, `n x 1`.
    zeros: Matrix,
    /// `(x, z)` pair concatenation, `n x (in + latent)`.
    pair: Matrix,
    /// BCE gradient at the discriminator head, `n x 1`.
    head_grad: Matrix,
    /// Gradient at the discriminator feature output, `n x hidden/2`.
    feat_grad: Matrix,
    /// Gradient at the discriminator input pair, `n x (in + latent)`.
    g_in: Matrix,
    /// `x`-slot slice of [`GanWorkspace::g_in`], `n x in`.
    gx: Matrix,
    /// `z`-slot slice of [`GanWorkspace::g_in`], `n x latent`.
    gz: Matrix,
    /// Sink for encoder/generator input gradients (unused downstream).
    eg_sink: Matrix,
}

impl GanWorkspace {
    /// Bytes currently staged in the workspace buffers.
    fn bytes(&self) -> usize {
        8 * (self.z.as_slice().len()
            + self.ones.as_slice().len()
            + self.zeros.as_slice().len()
            + self.pair.as_slice().len()
            + self.head_grad.as_slice().len()
            + self.feat_grad.as_slice().len()
            + self.g_in.as_slice().len()
            + self.gx.as_slice().len()
            + self.gz.as_slice().len()
            + self.eg_sink.as_slice().len())
    }
}

/// A trained (or training) BiGAN.
#[derive(Debug, Clone)]
pub struct BiGan {
    /// Encoder `x -> z`.
    encoder: Mlp,
    /// Generator `z -> x`.
    generator: Mlp,
    /// Discriminator feature extractor over `(x, z)` pairs.
    d_features: Mlp,
    /// Discriminator head: features -> probability.
    d_head: Dense,
    in_dim: usize,
    latent: usize,
    /// Global step counter for the discriminator head's Adam state.
    step: u64,
    ws: GanWorkspace,
}

/// Losses from one adversarial training step.
#[derive(Debug, Clone, Copy)]
pub struct GanLosses {
    /// Discriminator loss (BCE on real + fake pairs).
    pub d_loss: f64,
    /// Encoder+generator adversarial loss.
    pub eg_loss: f64,
}

impl BiGan {
    /// Build a BiGAN for `in_dim` inputs with `latent` latent units and the
    /// given hidden width for all three networks.
    pub fn new(in_dim: usize, latent: usize, hidden: usize, rng: &mut StdRng) -> Self {
        let encoder = Mlp::new(
            &[(in_dim, hidden, Activation::LeakyRelu), (hidden, latent, Activation::Identity)],
            rng,
        );
        let generator = Mlp::new(
            &[(latent, hidden, Activation::LeakyRelu), (hidden, in_dim, Activation::Identity)],
            rng,
        );
        let d_features = Mlp::new(
            &[
                (in_dim + latent, hidden, Activation::LeakyRelu),
                (hidden, hidden / 2, Activation::LeakyRelu),
            ],
            rng,
        );
        let d_head = Dense::new(hidden / 2, 1, Activation::Sigmoid, rng);
        Self {
            encoder,
            generator,
            d_features,
            d_head,
            in_dim,
            latent,
            step: 0,
            ws: GanWorkspace::default(),
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Latent dimensionality.
    pub fn latent_dim(&self) -> usize {
        self.latent
    }

    /// Bytes currently held by the reusable training workspaces (the
    /// GAN-level buffers plus each sub-network's).
    pub fn workspace_bytes(&self) -> usize {
        self.ws.bytes()
            + self.encoder.workspace_bytes()
            + self.generator.workspace_bytes()
            + self.d_features.workspace_bytes()
            + self.d_head.workspace_bytes()
    }

    fn concat(x: &Matrix, z: &Matrix) -> Matrix {
        assert_eq!(x.rows(), z.rows(), "pair batch mismatch");
        // Straight into the output buffer — the per-row `Vec` staging this
        // replaced doubled the copy for every discriminator input batch.
        let mut out = Matrix::zeros(x.rows(), x.cols() + z.cols());
        for i in 0..x.rows() {
            let row = out.row_mut(i);
            row[..x.cols()].copy_from_slice(x.row(i));
            row[x.cols()..].copy_from_slice(z.row(i));
        }
        out
    }

    /// [`BiGan::concat`] into a caller-reused buffer — same row copies,
    /// no fresh allocation once `out` has grown to the batch shape.
    fn concat_into(x: &Matrix, z: &Matrix, out: &mut Matrix) {
        assert_eq!(x.rows(), z.rows(), "pair batch mismatch");
        out.reset(x.rows(), x.cols() + z.cols());
        for i in 0..x.rows() {
            let row = out.row_mut(i);
            row[..x.cols()].copy_from_slice(x.row(i));
            row[x.cols()..].copy_from_slice(z.row(i));
        }
    }

    fn split_grad(&self, g: &Matrix) -> (Matrix, Matrix) {
        let gx = g.select_cols(&(0..self.in_dim).collect::<Vec<_>>());
        let gz = g.select_cols(&(self.in_dim..self.in_dim + self.latent).collect::<Vec<_>>());
        (gx, gz)
    }

    /// [`BiGan::split_grad`] into caller-reused buffers — the column
    /// ranges are contiguous, so each row splits with two slice copies
    /// (bitwise identical to the `select_cols` path).
    fn split_grad_into(&self, g: &Matrix, gx: &mut Matrix, gz: &mut Matrix) {
        gx.reset(g.rows(), self.in_dim);
        gz.reset(g.rows(), self.latent);
        for i in 0..g.rows() {
            let row = g.row(i);
            gx.row_mut(i).copy_from_slice(&row[..self.in_dim]);
            gz.row_mut(i).copy_from_slice(&row[self.in_dim..self.in_dim + self.latent]);
        }
    }

    /// Discriminator probability for a batch of `(x, z)` pairs (inference).
    pub fn discriminate(&self, x: &Matrix, z: &Matrix) -> Matrix {
        let f = self.d_features.predict(&Self::concat(x, z));
        self.d_head.forward_inference(&f)
    }

    /// Discriminator feature vector for a batch of `(x, z)` pairs.
    pub fn features(&self, x: &Matrix, z: &Matrix) -> Matrix {
        self.d_features.predict(&Self::concat(x, z))
    }

    /// Encode a batch.
    pub fn encode(&self, x: &Matrix) -> Matrix {
        self.encoder.predict(x)
    }

    /// Generate a batch from latent codes.
    pub fn generate(&self, z: &Matrix) -> Matrix {
        self.generator.predict(z)
    }

    /// Reconstruct a batch through encoder then generator.
    pub fn reconstruct(&self, x: &Matrix) -> Matrix {
        self.generate(&self.encode(x))
    }

    /// One adversarial training step on a batch of real samples.
    pub fn train_batch(&mut self, x: &Matrix, opt: &Optimizer, rng: &mut StdRng) -> GanLosses {
        if naive_elementwise_mode() {
            return self.train_batch_naive(x, opt, rng);
        }
        let mut ws = std::mem::take(&mut self.ws);
        let losses = self.train_batch_ws(x, opt, rng, &mut ws);
        self.ws = ws;
        losses
    }

    /// One discriminator forward/backward pass over the pair staged in
    /// `ws.pair` against `target`; returns the BCE loss. Gradients
    /// accumulate into `d_features`/`d_head` (the caller zeroes them).
    fn d_pass(&mut self, target: &Matrix, ws: &mut GanWorkspace) -> f64 {
        self.d_features.forward_cached(&ws.pair);
        self.d_head.forward_cached(self.d_features.output());
        let loss = bce(self.d_head.output(), target);
        bce_grad_into(self.d_head.output(), target, &mut ws.head_grad);
        self.d_head.backward_into(&ws.head_grad, &mut ws.feat_grad);
        self.d_features.backward_into(&ws.feat_grad, &mut ws.g_in);
        loss
    }

    /// The fused training step: all intermediates staged in `ws`, one
    /// encoder and one generator forward per batch (their cached
    /// activations stay valid across the D and E/G passes because their
    /// weights only update at the end). Bitwise identical to
    /// [`BiGan::train_batch_naive`].
    fn train_batch_ws(
        &mut self,
        x: &Matrix,
        opt: &Optimizer,
        rng: &mut StdRng,
        ws: &mut GanWorkspace,
    ) -> GanLosses {
        let n = x.rows();
        // Latent draws in the exact `Matrix::from_fn` order (row-major),
        // so the RNG stream matches the naive path draw for draw.
        ws.z.reset(n, self.latent);
        for v in ws.z.as_mut_slice().iter_mut() {
            *v = rng.gen_range(-1.0..1.0);
        }
        ws.ones.reset(n, 1);
        ws.ones.as_mut_slice().fill(1.0);
        ws.zeros.reset(n, 1);
        ws.zeros.as_mut_slice().fill(0.0);

        // --- Discriminator step: real (x, E(x)) -> 1, fake (G(z), z) -> 0.
        // These forwards double as the cached activations for the E/G
        // step below: E and G only update at the end of the batch, so the
        // caches stay bitwise-valid and one forward per network is saved.
        self.encoder.forward_cached(x);
        self.generator.forward_cached(&ws.z);
        self.d_features.zero_grad();
        self.d_head.zero_grad();
        let mut d_loss = 0.0;
        Self::concat_into(x, self.encoder.output(), &mut ws.pair);
        d_loss += {
            let ones = std::mem::take(&mut ws.ones);
            let l = self.d_pass(&ones, ws);
            ws.ones = ones;
            l
        };
        Self::concat_into(self.generator.output(), &ws.z, &mut ws.pair);
        d_loss += {
            let zeros = std::mem::take(&mut ws.zeros);
            let l = self.d_pass(&zeros, ws);
            ws.zeros = zeros;
            l
        };
        self.d_features.apply_step(opt);
        self.step += 1;
        {
            let step = self.step;
            let mut head_params = self.d_head.params_mut();
            opt.step(&mut head_params, step);
        }

        // --- Encoder+generator step: swap labels to fool D.
        self.encoder.zero_grad();
        self.generator.zero_grad();
        let mut eg_loss = 0.0;

        // Real pair should look fake to D: gradient flows into E via z slot.
        {
            self.d_features.zero_grad();
            self.d_head.zero_grad();
            Self::concat_into(x, self.encoder.output(), &mut ws.pair);
            eg_loss += {
                let zeros = std::mem::take(&mut ws.zeros);
                let l = self.d_pass(&zeros, ws);
                ws.zeros = zeros;
                l
            };
            self.split_grad_into(&ws.g_in, &mut ws.gx, &mut ws.gz);
            self.encoder.backward_into(&ws.gz, &mut ws.eg_sink);
        }
        // Fake pair should look real to D: gradient flows into G via x slot.
        {
            self.d_features.zero_grad();
            self.d_head.zero_grad();
            Self::concat_into(self.generator.output(), &ws.z, &mut ws.pair);
            eg_loss += {
                let ones = std::mem::take(&mut ws.ones);
                let l = self.d_pass(&ones, ws);
                ws.ones = ones;
                l
            };
            self.split_grad_into(&ws.g_in, &mut ws.gx, &mut ws.gz);
            self.generator.backward_into(&ws.gx, &mut ws.eg_sink);
        }
        // Discard the D gradients accumulated while backpropagating through
        // it; only E and G update here.
        self.d_features.zero_grad();
        self.d_head.zero_grad();
        self.encoder.apply_step(opt);
        self.generator.apply_step(opt);

        obs::counter("train.workspace_bytes", ws.bytes() as u64);
        GanLosses { d_loss: d_loss / 2.0, eg_loss: eg_loss / 2.0 }
    }

    /// The historical allocating training step, retained as the
    /// `EXATHLON_NAIVE_ELEMENTWISE=1` reference.
    fn train_batch_naive(&mut self, x: &Matrix, opt: &Optimizer, rng: &mut StdRng) -> GanLosses {
        let n = x.rows();
        let z = Matrix::from_fn(n, self.latent, |_, _| rng.gen_range(-1.0..1.0));
        let ones = Matrix::filled(n, 1, 1.0);
        let zeros = Matrix::filled(n, 1, 0.0);

        // --- Discriminator step: real (x, E(x)) -> 1, fake (G(z), z) -> 0.
        let e_x = self.encoder.predict(x);
        let g_z = self.generator.predict(&z);
        self.d_features.zero_grad();
        self.d_head.zero_grad();
        let mut d_loss = 0.0;
        for (input, target) in [(Self::concat(x, &e_x), &ones), (Self::concat(&g_z, &z), &zeros)] {
            let f = self.d_features.forward(&input);
            let p = self.d_head.forward(&f);
            d_loss += bce(&p, target);
            let g = self.d_head.backward(&bce_grad(&p, target));
            let _ = self.d_features.backward(&g);
        }
        self.d_features.apply_step(opt);
        self.step += 1;
        {
            let step = self.step;
            let mut head_params = self.d_head.params_mut();
            opt.step(&mut head_params, step);
        }

        // --- Encoder+generator step: swap labels to fool D.
        self.encoder.zero_grad();
        self.generator.zero_grad();
        let mut eg_loss = 0.0;

        // Real pair should look fake to D: gradient flows into E via z slot.
        let e_x = self.encoder.forward(x);
        {
            self.d_features.zero_grad();
            self.d_head.zero_grad();
            let f = self.d_features.forward(&Self::concat(x, &e_x));
            let p = self.d_head.forward(&f);
            eg_loss += bce(&p, &zeros);
            let g = self.d_head.backward(&bce_grad(&p, &zeros));
            let g_in = self.d_features.backward(&g);
            let (_, gz) = self.split_grad(&g_in);
            let _ = self.encoder.backward(&gz);
        }
        // Fake pair should look real to D: gradient flows into G via x slot.
        let g_z = self.generator.forward(&z);
        {
            self.d_features.zero_grad();
            self.d_head.zero_grad();
            let f = self.d_features.forward(&Self::concat(&g_z, &z));
            let p = self.d_head.forward(&f);
            eg_loss += bce(&p, &ones);
            let g = self.d_head.backward(&bce_grad(&p, &ones));
            let g_in = self.d_features.backward(&g);
            let (gx, _) = self.split_grad(&g_in);
            let _ = self.generator.backward(&gx);
        }
        // Discard the D gradients accumulated while backpropagating through
        // it; only E and G update here.
        self.d_features.zero_grad();
        self.d_head.zero_grad();
        self.encoder.apply_step(opt);
        self.generator.apply_step(opt);

        // Meter the dominant GAN-level fresh allocations of this
        // historical path (latent draws, labels, pair concats and split
        // gradients); the naive layer internals meter their own.
        let pair = self.in_dim + self.latent;
        obs::counter(
            "train.alloc_bytes",
            (8 * n * (2 * self.latent + 2 * self.in_dim + 2 + 6 * pair + 4)) as u64,
        );
        GanLosses { d_loss: d_loss / 2.0, eg_loss: eg_loss / 2.0 }
    }

    /// Train for `epochs` over the rows of `data` with shuffled
    /// minibatches; returns the last epoch's losses.
    pub fn fit(
        &mut self,
        data: &Matrix,
        epochs: usize,
        batch_size: usize,
        opt: &Optimizer,
        rng: &mut StdRng,
    ) -> GanLosses {
        use rand::seq::SliceRandom;
        assert!(batch_size > 0, "batch size must be positive");
        let mut order: Vec<usize> = (0..data.rows()).collect();
        let mut last = GanLosses { d_loss: f64::NAN, eg_loss: f64::NAN };
        // Reused minibatch scratch, as in `Mlp::fit`.
        let mut xb = Matrix::zeros(0, 0);
        for _ in 0..epochs {
            let _sp = obs::span("train", "BiGan.epoch");
            order.shuffle(rng);
            for chunk in order.chunks(batch_size) {
                data.select_rows_into(chunk, &mut xb);
                last = self.train_batch(&xb, opt, rng);
            }
            obs::counter("train.samples", data.rows() as u64);
            obs::add_records("train", data.rows() as u64);
        }
        last
    }

    /// The Zenati et al. outlier score for each row of `x`: the average of
    /// the `(E, G)` reconstruction error and the discriminator feature loss
    /// between the input pair and its reconstruction pair.
    pub fn outlier_scores(&self, x: &Matrix) -> Vec<f64> {
        let z = self.encode(x);
        let recon = self.generate(&z);
        let rec_err = row_squared_errors(&recon, x);
        let f_real = self.features(x, &z);
        let f_recon = self.features(&recon, &z);
        let feat_err = row_squared_errors(&f_recon, &f_real);
        rec_err.iter().zip(&feat_err).map(|(r, f)| 0.5 * r + 0.5 * f).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(31)
    }

    /// Normal data: points near the line x1 = x0 in [0, 1].
    fn normal_batch(n: usize, rng: &mut StdRng) -> Matrix {
        Matrix::from_rows(
            &(0..n)
                .map(|_| {
                    let t: f64 = rng.gen_range(0.0..1.0);
                    vec![t, t + rng.gen_range(-0.05..0.05)]
                })
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn shapes() {
        let gan = BiGan::new(4, 2, 8, &mut rng());
        assert_eq!(gan.in_dim(), 4);
        assert_eq!(gan.latent_dim(), 2);
        let x = Matrix::from_vec(3, 4, vec![0.1; 12]);
        let z = gan.encode(&x);
        assert_eq!(z.shape(), (3, 2));
        let r = gan.reconstruct(&x);
        assert_eq!(r.shape(), (3, 4));
        let p = gan.discriminate(&x, &z);
        assert_eq!(p.shape(), (3, 1));
        assert!(p.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn training_step_returns_finite_losses() {
        let mut r = rng();
        let mut gan = BiGan::new(2, 2, 8, &mut r);
        let x = normal_batch(16, &mut r);
        let losses = gan.train_batch(&x, &Optimizer::adam(0.001), &mut r);
        assert!(losses.d_loss.is_finite());
        assert!(losses.eg_loss.is_finite());
    }

    /// The fused workspace step must match the retained allocating step
    /// bitwise: same losses, same updated parameters, same RNG stream.
    #[test]
    fn fused_step_matches_allocating_reference_bitwise() {
        let mut r = rng();
        let mut fused = BiGan::new(2, 2, 8, &mut r);
        let mut reference = fused.clone();
        let opt = Optimizer::adam(0.001);

        let mut rng_a = StdRng::seed_from_u64(99);
        let mut rng_b = StdRng::seed_from_u64(99);
        for round in 0..3 {
            let x = normal_batch(9, &mut r);
            let mut ws = std::mem::take(&mut fused.ws);
            let la = fused.train_batch_ws(&x, &opt, &mut rng_a, &mut ws);
            fused.ws = ws;
            let lb = reference.train_batch_naive(&x, &opt, &mut rng_b);
            assert_eq!(la.d_loss.to_bits(), lb.d_loss.to_bits(), "d_loss round {round}");
            assert_eq!(la.eg_loss.to_bits(), lb.eg_loss.to_bits(), "eg_loss round {round}");
        }
        // Same RNG position afterwards (same number of draws consumed).
        assert_eq!(rng_a.gen_range(0.0..1.0_f64), rng_b.gen_range(0.0..1.0_f64));
        // Identical trained weights -> identical scores.
        let probe = normal_batch(7, &mut r);
        let sa = fused.outlier_scores(&probe);
        let sb = reference.outlier_scores(&probe);
        for (a, b) in sa.iter().zip(&sb) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn anomalies_score_higher_after_training() {
        let mut r = rng();
        let mut gan = BiGan::new(2, 1, 16, &mut r);
        let train = normal_batch(256, &mut r);
        gan.fit(&train, 60, 32, &Optimizer::adam(0.002), &mut r);

        let normal = normal_batch(50, &mut r);
        let anomalous = Matrix::from_rows(
            &(0..50)
                .map(|_| {
                    let t: f64 = r.gen_range(0.0..1.0);
                    vec![t, 3.0 + t] // far off the manifold
                })
                .collect::<Vec<_>>(),
        );
        let sn: f64 = gan.outlier_scores(&normal).iter().sum::<f64>() / 50.0;
        let sa: f64 = gan.outlier_scores(&anomalous).iter().sum::<f64>() / 50.0;
        assert!(sa > sn * 1.5, "anomalies should score higher: normal {sn} vs anomalous {sa}");
    }

    #[test]
    fn reconstruction_tracks_training_data() {
        let mut r = rng();
        let mut gan = BiGan::new(2, 1, 16, &mut r);
        let train = normal_batch(256, &mut r);
        gan.fit(&train, 60, 32, &Optimizer::adam(0.002), &mut r);
        let x = normal_batch(20, &mut r);
        let recon = gan.reconstruct(&x);
        let err: f64 = row_squared_errors(&recon, &x).iter().sum::<f64>() / 20.0;
        assert!(err < 1.0, "reconstruction error too high: {err}");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut r = StdRng::seed_from_u64(77);
            let mut gan = BiGan::new(2, 1, 8, &mut r);
            let x = normal_batch(32, &mut r);
            let l = gan.train_batch(&x, &Optimizer::adam(0.001), &mut r);
            (l.d_loss, l.eg_loss)
        };
        assert_eq!(run(), run());
    }
}
