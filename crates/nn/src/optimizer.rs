//! Optimizers: plain SGD and Adam.
//!
//! Both operate on [`Param`]s, whose Adam moment buffers live with the
//! parameter so that a network can hand the optimizer a flat list of
//! `&mut Param` without the optimizer tracking identity.

use crate::param::Param;
use exathlon_linalg::elemwise::{self, naive_elementwise_mode};

/// Optimizer configuration.
#[derive(Debug, Clone, Copy)]
pub enum Optimizer {
    /// Stochastic gradient descent with a fixed learning rate.
    Sgd {
        /// Learning rate.
        lr: f64,
    },
    /// Adam (Kingma & Ba) with bias correction.
    Adam {
        /// Learning rate.
        lr: f64,
        /// First-moment decay.
        beta1: f64,
        /// Second-moment decay.
        beta2: f64,
        /// Numerical stabilizer.
        eps: f64,
    },
}

impl Optimizer {
    /// Adam with the standard defaults and the given learning rate.
    pub fn adam(lr: f64) -> Self {
        Optimizer::Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8 }
    }

    /// SGD with the given learning rate.
    pub fn sgd(lr: f64) -> Self {
        Optimizer::Sgd { lr }
    }

    /// Apply one update step to `params` using their accumulated gradients,
    /// then zero the gradients. `t` is the 1-based global step count (for
    /// Adam bias correction).
    pub fn step(&self, params: &mut [&mut Param], t: u64) {
        assert!(t >= 1, "step count is 1-based");
        let naive = naive_elementwise_mode();
        match *self {
            Optimizer::Sgd { lr } => {
                for p in params.iter_mut() {
                    if naive {
                        // Historical path: clone the gradient, then axpy.
                        let grad = p.grad.clone();
                        p.value.add_scaled(&grad, -lr);
                        exathlon_linalg::obs::counter(
                            "train.alloc_bytes",
                            (8 * grad.as_slice().len()) as u64,
                        );
                    } else {
                        // Fused in-place update — same expression, no clone.
                        elemwise::sgd_update(p.value.as_mut_slice(), p.grad.as_slice(), lr);
                    }
                    p.zero_grad();
                }
            }
            Optimizer::Adam { lr, beta1, beta2, eps } => {
                for p in params.iter_mut() {
                    let Param { value, grad, m, v } = &mut **p;
                    if naive {
                        elemwise::naive_adam_update(
                            value.as_mut_slice(),
                            grad.as_slice(),
                            m.as_mut_slice(),
                            v.as_mut_slice(),
                            lr,
                            beta1,
                            beta2,
                            eps,
                            t,
                        );
                    } else {
                        elemwise::adam_update(
                            value.as_mut_slice(),
                            grad.as_slice(),
                            m.as_mut_slice(),
                            v.as_mut_slice(),
                            lr,
                            beta1,
                            beta2,
                            eps,
                            t,
                        );
                    }
                    p.zero_grad();
                }
            }
        }
    }
}

/// Clip every gradient in `params` to the given max L2 norm (computed over
/// all parameters jointly) — used by the LSTM's BPTT to avoid exploding
/// gradients.
pub fn clip_grad_norm(params: &mut [&mut Param], max_norm: f64) {
    let total: f64 =
        params.iter().map(|p| p.grad.as_slice().iter().map(|g| g * g).sum::<f64>()).sum();
    let norm = total.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params.iter_mut() {
            // Vectorized in-place scale — same per-element product as the
            // historical `*g *= scale` loop.
            elemwise::scale(p.grad.as_mut_slice(), scale);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exathlon_linalg::Matrix;

    fn param_with_grad(value: f64, grad: f64) -> Param {
        let mut p = Param::zeros(1, 1);
        p.value[(0, 0)] = value;
        p.grad[(0, 0)] = grad;
        p
    }

    #[test]
    fn sgd_moves_against_gradient() {
        let mut p = param_with_grad(1.0, 2.0);
        Optimizer::sgd(0.1).step(&mut [&mut p], 1);
        assert!((p.value[(0, 0)] - 0.8).abs() < 1e-12);
        assert_eq!(p.grad[(0, 0)], 0.0, "grad must be zeroed after step");
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction, the first Adam step is ~lr * sign(grad).
        let mut p = param_with_grad(0.0, 5.0);
        Optimizer::adam(0.01).step(&mut [&mut p], 1);
        assert!((p.value[(0, 0)] + 0.01).abs() < 1e-6);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // Minimize f(x) = (x - 3)^2 from x = 0.
        let mut p = param_with_grad(0.0, 0.0);
        let opt = Optimizer::adam(0.1);
        for t in 1..=500 {
            p.grad[(0, 0)] = 2.0 * (p.value[(0, 0)] - 3.0);
            opt.step(&mut [&mut p], t);
        }
        assert!((p.value[(0, 0)] - 3.0).abs() < 0.05, "got {}", p.value[(0, 0)]);
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut p = param_with_grad(0.0, 0.0);
        let opt = Optimizer::sgd(0.1);
        for t in 1..=200 {
            p.grad[(0, 0)] = 2.0 * (p.value[(0, 0)] - 3.0);
            opt.step(&mut [&mut p], t);
        }
        assert!((p.value[(0, 0)] - 3.0).abs() < 1e-6);
    }

    /// The in-place SGD arm must produce bitwise-identical parameters to
    /// the historical clone-then-`add_scaled` path.
    #[test]
    fn sgd_inplace_matches_clone_path_bitwise() {
        let lr = 0.0173;
        let mut p = Param::zeros(3, 4);
        for (i, v) in p.value.as_mut_slice().iter_mut().enumerate() {
            *v = (i as f64 * 0.83 - 4.0).sin();
        }
        for (i, g) in p.grad.as_mut_slice().iter_mut().enumerate() {
            *g = (i as f64 * 1.7 + 0.2).cos() * 3.0;
        }
        // Historical path, replicated verbatim: clone + add_scaled.
        let mut expected = p.value.clone();
        let grad_clone = p.grad.clone();
        expected.add_scaled(&grad_clone, -lr);
        Optimizer::sgd(lr).step(&mut [&mut p], 1);
        let got: Vec<u64> = p.value.as_slice().iter().map(|v| v.to_bits()).collect();
        let want: Vec<u64> = expected.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, want);
        assert!(p.grad.as_slice().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn clip_grad_norm_scales_down() {
        let mut p = Param::zeros(1, 2);
        p.grad = Matrix::from_vec(1, 2, vec![3.0, 4.0]); // norm 5
        clip_grad_norm(&mut [&mut p], 1.0);
        let norm: f64 = p.grad.as_slice().iter().map(|g| g * g).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clip_grad_norm_leaves_small_grads() {
        let mut p = Param::zeros(1, 2);
        p.grad = Matrix::from_vec(1, 2, vec![0.3, 0.4]);
        clip_grad_norm(&mut [&mut p], 1.0);
        assert_eq!(p.grad.as_slice(), &[0.3, 0.4]);
    }
}
