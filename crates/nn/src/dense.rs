//! Fully-connected layers with explicit backpropagation.
//!
//! Training runs through a per-layer workspace: forward stages the batch
//! input and GEMM output into reused buffers (bias + activation fused
//! into the epilogue via [`exathlon_linalg::elemwise::bias_act`]),
//! backward consumes them in place, and gradients accumulate through a
//! reused `dw` scratch — zero allocations per minibatch once the buffers
//! reach the steady batch shape. Setting `EXATHLON_NAIVE_ELEMENTWISE=1`
//! re-enacts the historical clone-per-step path (fresh `z`, activation,
//! derivative and gradient matrices every call) with bitwise-identical
//! results — the baseline `bench_train` measures and
//! `tests/trainstep_equivalence.rs` pins.

use crate::activation::Activation;
use crate::param::Param;
use exathlon_linalg::elemwise::{self, naive_elementwise_mode};
use exathlon_linalg::{kernel, obs, Matrix};
use rand::rngs::StdRng;

/// Reused training buffers of one dense layer. Sized on first use per
/// batch shape and reused across minibatches and epochs; `reset` only
/// reallocates when a larger batch arrives.
#[derive(Debug, Clone, Default)]
struct DenseWorkspace {
    /// Whether a forward pass has populated the caches.
    cached: bool,
    /// Staged copy of the last forward input (`n x in_dim`).
    input: Matrix,
    /// Last forward output `y = act(x Wᵀ + b)` (`n x out_dim`).
    output: Matrix,
    /// Weight-transpose scratch for the SIMD GEMM path.
    wt: Matrix,
    /// `dL/dz` scratch for backward.
    dz: Matrix,
    /// `dzᵀ·x` gradient scratch, accumulated into `weight.grad`.
    dw: Matrix,
}

impl DenseWorkspace {
    /// Total bytes currently held by the workspace buffers.
    fn bytes(&self) -> usize {
        8 * (self.input.as_slice().len()
            + self.output.as_slice().len()
            + self.wt.as_slice().len()
            + self.dz.as_slice().len()
            + self.dw.as_slice().len())
    }
}

/// A dense layer `y = act(x W^T + b)` operating on batches (rows = samples).
#[derive(Debug, Clone)]
pub struct Dense {
    /// Weight matrix, `out_dim x in_dim`.
    pub weight: Param,
    /// Bias row, `1 x out_dim`.
    pub bias: Param,
    /// Activation applied after the affine map.
    pub activation: Activation,
    /// Reused training buffers (forward caches + backward scratch).
    ws: DenseWorkspace,
}

impl Dense {
    /// Create a layer with initialization matched to the activation.
    pub fn new(in_dim: usize, out_dim: usize, activation: Activation, rng: &mut StdRng) -> Self {
        let weight = match activation {
            Activation::Relu | Activation::LeakyRelu => Param::he(out_dim, in_dim, in_dim, rng),
            _ => Param::xavier(out_dim, in_dim, in_dim, out_dim, rng),
        };
        Self { weight, bias: Param::zeros(1, out_dim), activation, ws: DenseWorkspace::default() }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.weight.value.cols()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.weight.value.rows()
    }

    /// Bytes currently held by the layer's training workspace.
    pub fn workspace_bytes(&self) -> usize {
        self.ws.bytes()
    }

    /// Forward pass for a batch (`n x in_dim`), caching activations for a
    /// subsequent [`Dense::backward`]. Returns a copy of the output; the
    /// allocation-free training loops use [`Dense::forward_cached`] +
    /// [`Dense::output`] instead.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        self.forward_cached(x);
        self.ws.output.clone()
    }

    /// Forward pass into the layer workspace: input staged with one copy,
    /// GEMM into the reused output buffer, bias + activation fused into
    /// the epilogue. No allocation at steady state; bitwise identical to
    /// the historical clone-per-call path, which
    /// `EXATHLON_NAIVE_ELEMENTWISE=1` re-enacts.
    pub fn forward_cached(&mut self, x: &Matrix) {
        assert_eq!(x.cols(), self.in_dim(), "dense input dimension mismatch");
        if naive_elementwise_mode() {
            // Historical path: fresh z + activation matrices inside
            // `forward_inference`, then cloned input/output caches.
            let out = self.forward_inference(x);
            obs::counter(
                "train.alloc_bytes",
                (8 * (x.as_slice().len() + 3 * out.as_slice().len())) as u64,
            );
            self.ws.input = x.clone();
            self.ws.output = out;
            self.ws.cached = true;
            return;
        }
        let ws = &mut self.ws;
        ws.input.copy_from(x);
        kernel::matmul_transpose_into(x, &self.weight.value, &mut ws.wt, &mut ws.output);
        elemwise::bias_act(
            ws.output.as_mut_slice(),
            x.rows(),
            self.weight.value.rows(),
            self.bias.value.row(0),
            self.activation.kind(),
        );
        ws.cached = true;
        obs::counter(
            "train.workspace_bytes",
            (8 * (ws.input.as_slice().len() + ws.output.as_slice().len())) as u64,
        );
    }

    /// The cached output of the last [`Dense::forward_cached`].
    ///
    /// # Panics
    /// Panics if no forward pass has run.
    pub fn output(&self) -> &Matrix {
        assert!(self.ws.cached, "output before forward");
        &self.ws.output
    }

    /// Forward pass without caching (inference only).
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.in_dim(), "dense input dimension mismatch");
        let mut z = x.matmul_transpose(&self.weight.value);
        if naive_elementwise_mode() {
            // Historical path: scalar bias loop + allocating activation map.
            for i in 0..z.rows() {
                let row = z.row_mut(i);
                for (v, b) in row.iter_mut().zip(self.bias.value.row(0)) {
                    *v += b;
                }
            }
            return self.activation.forward(&z);
        }
        let rows = z.rows();
        elemwise::bias_act(
            z.as_mut_slice(),
            rows,
            self.weight.value.rows(),
            self.bias.value.row(0),
            self.activation.kind(),
        );
        z
    }

    /// Backward pass: takes `dL/dy` for the cached batch, accumulates
    /// parameter gradients, and returns `dL/dx`. The allocation-free
    /// training loops use [`Dense::backward_into`] instead.
    ///
    /// # Panics
    /// Panics if called before `forward`.
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let mut dx = Matrix::default();
        self.backward_into(grad_out, &mut dx);
        dx
    }

    /// [`Dense::backward`] into a caller-reused `dx` buffer: `dz` lands in
    /// workspace scratch via the fused activation-derivative kernel, the
    /// weight gradient accumulates through the reused `dw` scratch (the
    /// two-step `materialize + add` keeps the historical accumulation
    /// order bitwise), and bias gradients accumulate row by row in place.
    ///
    /// # Panics
    /// Panics if called before `forward`.
    pub fn backward_into(&mut self, grad_out: &Matrix, dx: &mut Matrix) {
        assert!(self.ws.cached, "backward before forward");
        assert_eq!(grad_out.shape(), self.ws.output.shape(), "grad shape mismatch");
        if naive_elementwise_mode() {
            // Historical path: derivative matrix + hadamard + fresh dw/dx.
            let x = &self.ws.input;
            let y = &self.ws.output;
            let dz = grad_out.hadamard(&self.activation.derivative_from_output(y));
            let dw = dz.transpose_matmul(x);
            self.weight.grad += &dw;
            for i in 0..dz.rows() {
                let row = dz.row(i);
                for (g, &d) in self.bias.grad.row_mut(0).iter_mut().zip(row) {
                    *g += d;
                }
            }
            let out = dz.matmul(&self.weight.value);
            obs::counter(
                "train.alloc_bytes",
                (8 * (2 * dz.as_slice().len() + dw.as_slice().len() + out.as_slice().len())) as u64,
            );
            *dx = out;
            return;
        }
        let ws = &mut self.ws;
        let act = self.activation.kind();
        ws.dz.reset(grad_out.rows(), grad_out.cols());
        elemwise::act_backward(
            ws.output.as_slice(),
            grad_out.as_slice(),
            ws.dz.as_mut_slice(),
            act,
        );
        // dL/dW = dzᵀ x, materialized into reused scratch and then added:
        // a direct GEMM-accumulate into a non-zero `grad` would change the
        // per-element rounding order when backward runs more than once
        // between `zero_grad`s (the BiGAN discriminator does exactly that).
        kernel::transpose_matmul_into(&ws.dz, &ws.input, &mut ws.dw);
        elemwise::accumulate(self.weight.grad.as_mut_slice(), ws.dw.as_slice());
        for i in 0..ws.dz.rows() {
            elemwise::accumulate(self.bias.grad.row_mut(0), ws.dz.row(i));
        }
        // dL/dx = dz W
        kernel::matmul_into(&ws.dz, &self.weight.value, dx);
        obs::counter(
            "train.workspace_bytes",
            (8 * (ws.dz.as_slice().len() + ws.dw.as_slice().len() + dx.as_slice().len())) as u64,
        );
    }

    /// Serialize the layer's learned state (weights, bias, activation)
    /// into `w`. Training workspaces and optimizer moments are transient
    /// and not part of the wire format.
    pub fn encode(&self, w: &mut exathlon_linalg::codec::ByteWriter) {
        w.put_u8(self.activation.to_tag());
        w.put_matrix(&self.weight.value);
        w.put_matrix(&self.bias.value);
    }

    /// Decode a layer written by [`Dense::encode`]. The restored weights
    /// are bitwise identical, so [`Dense::forward_inference`] reproduces
    /// the original outputs exactly.
    pub fn decode(
        r: &mut exathlon_linalg::codec::ByteReader<'_>,
    ) -> Result<Self, exathlon_linalg::codec::CodecError> {
        let activation = Activation::from_tag(r.get_u8()?)
            .ok_or(exathlon_linalg::codec::CodecError::Corrupt("unknown activation tag"))?;
        let weight = r.get_matrix()?;
        let bias = r.get_matrix()?;
        if weight.rows() == 0 || weight.cols() == 0 {
            return Err(exathlon_linalg::codec::CodecError::Corrupt("empty dense weight"));
        }
        if bias.rows() != 1 || bias.cols() != weight.rows() {
            return Err(exathlon_linalg::codec::CodecError::Corrupt("dense bias shape mismatch"));
        }
        Ok(Self {
            weight: Param::from_value(weight),
            bias: Param::from_value(bias),
            activation,
            ws: DenseWorkspace::default(),
        })
    }

    /// Mutable access to the layer's parameters, for the optimizer.
    pub fn params_mut(&mut self) -> [&mut Param; 2] {
        [&mut self.weight, &mut self.bias]
    }

    /// Zero both gradient accumulators.
    pub fn zero_grad(&mut self) {
        self.weight.zero_grad();
        self.bias.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn forward_shapes() {
        let mut layer = Dense::new(3, 2, Activation::Identity, &mut rng());
        let x = Matrix::from_vec(4, 3, vec![0.1; 12]);
        let y = layer.forward(&x);
        assert_eq!(y.shape(), (4, 2));
    }

    #[test]
    fn identity_layer_is_affine() {
        let mut layer = Dense::new(2, 1, Activation::Identity, &mut rng());
        // Set W = [[1, 2]], b = [3].
        layer.weight.value = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        layer.bias.value = Matrix::from_vec(1, 1, vec![3.0]);
        let y = layer.forward(&Matrix::from_vec(1, 2, vec![10.0, 20.0]));
        assert_eq!(y.as_slice(), &[53.0]);
    }

    /// Gradient check against finite differences on a tiny layer.
    #[test]
    fn gradients_match_finite_differences() {
        let mut layer = Dense::new(2, 2, Activation::Tanh, &mut rng());
        let x = Matrix::from_vec(3, 2, vec![0.5, -0.3, 0.1, 0.9, -0.7, 0.2]);
        // Loss = sum(y); dL/dy = ones.
        let loss = |layer: &Dense, x: &Matrix| layer.forward_inference(x).sum();

        layer.zero_grad();
        let _ = layer.forward(&x);
        let grad_in = layer.backward(&Matrix::filled(3, 2, 1.0));

        let eps = 1e-6;
        // Check weight gradients.
        for i in 0..2 {
            for j in 0..2 {
                let orig = layer.weight.value[(i, j)];
                layer.weight.value[(i, j)] = orig + eps;
                let up = loss(&layer, &x);
                layer.weight.value[(i, j)] = orig - eps;
                let down = loss(&layer, &x);
                layer.weight.value[(i, j)] = orig;
                let numeric = (up - down) / (2.0 * eps);
                let analytic = layer.weight.grad[(i, j)];
                assert!(
                    (numeric - analytic).abs() < 1e-5,
                    "dW[{i}{j}] numeric {numeric} vs analytic {analytic}"
                );
            }
        }
        // Check input gradient.
        for i in 0..3 {
            for j in 0..2 {
                let mut x2 = x.clone();
                x2[(i, j)] += eps;
                let up = loss(&layer, &x2);
                x2[(i, j)] -= 2.0 * eps;
                let down = loss(&layer, &x2);
                let numeric = (up - down) / (2.0 * eps);
                assert!(
                    (numeric - grad_in[(i, j)]).abs() < 1e-5,
                    "dX[{i}{j}] numeric {numeric} vs analytic {}",
                    grad_in[(i, j)]
                );
            }
        }
    }

    #[test]
    fn bias_gradient_sums_over_batch() {
        let mut layer = Dense::new(1, 1, Activation::Identity, &mut rng());
        layer.zero_grad();
        let x = Matrix::from_vec(5, 1, vec![1.0; 5]);
        let _ = layer.forward(&x);
        let _ = layer.backward(&Matrix::filled(5, 1, 2.0));
        assert_eq!(layer.bias.grad[(0, 0)], 10.0);
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_without_forward_panics() {
        let mut layer = Dense::new(2, 2, Activation::Relu, &mut rng());
        let _ = layer.backward(&Matrix::zeros(1, 2));
    }

    /// The workspace survives batch-shape changes (last chunk of an epoch
    /// is smaller) and still backprops correctly.
    #[test]
    fn shrinking_batch_reuses_workspace() {
        let mut layer = Dense::new(3, 2, Activation::Tanh, &mut rng());
        layer.zero_grad();
        let big = Matrix::from_fn(8, 3, |i, j| ((i * 3 + j) as f64 * 0.21).sin());
        layer.forward_cached(&big);
        let mut dx = Matrix::default();
        layer.backward_into(&Matrix::filled(8, 2, 0.5), &mut dx);
        assert_eq!(dx.shape(), (8, 3));
        let small = Matrix::from_fn(3, 3, |i, j| ((i + j) as f64 * 0.4).cos());
        layer.forward_cached(&small);
        assert_eq!(layer.output().shape(), (3, 2));
        layer.backward_into(&Matrix::filled(3, 2, 0.5), &mut dx);
        assert_eq!(dx.shape(), (3, 3));
        assert!(layer.workspace_bytes() > 0);
    }
}
