//! Fully-connected layers with explicit backpropagation.

use crate::activation::Activation;
use crate::param::Param;
use exathlon_linalg::Matrix;
use rand::rngs::StdRng;

/// A dense layer `y = act(x W^T + b)` operating on batches (rows = samples).
#[derive(Debug, Clone)]
pub struct Dense {
    /// Weight matrix, `out_dim x in_dim`.
    pub weight: Param,
    /// Bias row, `1 x out_dim`.
    pub bias: Param,
    /// Activation applied after the affine map.
    pub activation: Activation,
    /// Cached input of the last forward pass (for backprop).
    cached_input: Option<Matrix>,
    /// Cached output of the last forward pass.
    cached_output: Option<Matrix>,
}

impl Dense {
    /// Create a layer with initialization matched to the activation.
    pub fn new(in_dim: usize, out_dim: usize, activation: Activation, rng: &mut StdRng) -> Self {
        let weight = match activation {
            Activation::Relu | Activation::LeakyRelu => Param::he(out_dim, in_dim, in_dim, rng),
            _ => Param::xavier(out_dim, in_dim, in_dim, out_dim, rng),
        };
        Self {
            weight,
            bias: Param::zeros(1, out_dim),
            activation,
            cached_input: None,
            cached_output: None,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.weight.value.cols()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.weight.value.rows()
    }

    /// Forward pass for a batch (`n x in_dim`), caching activations for a
    /// subsequent [`Dense::backward`].
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let out = self.forward_inference(x);
        self.cached_input = Some(x.clone());
        self.cached_output = Some(out.clone());
        out
    }

    /// Forward pass without caching (inference only).
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.in_dim(), "dense input dimension mismatch");
        let mut z = x.matmul_transpose(&self.weight.value);
        for i in 0..z.rows() {
            let row = z.row_mut(i);
            for (v, b) in row.iter_mut().zip(self.bias.value.row(0)) {
                *v += b;
            }
        }
        self.activation.forward(&z)
    }

    /// Backward pass: takes `dL/dy` for the cached batch, accumulates
    /// parameter gradients, and returns `dL/dx`.
    ///
    /// # Panics
    /// Panics if called before `forward`.
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let x = self.cached_input.as_ref().expect("backward before forward");
        let y = self.cached_output.as_ref().expect("backward before forward");
        assert_eq!(grad_out.shape(), y.shape(), "grad shape mismatch");

        // dL/dz = dL/dy * act'(z)
        let dz = grad_out.hadamard(&self.activation.derivative_from_output(y));
        // dL/dW = dz^T x ; dL/db = column sums of dz
        let dw = dz.transpose_matmul(x);
        self.weight.grad += &dw;
        for i in 0..dz.rows() {
            let row = dz.row(i);
            for (g, &d) in self.bias.grad.row_mut(0).iter_mut().zip(row) {
                *g += d;
            }
        }
        // dL/dx = dz W
        dz.matmul(&self.weight.value)
    }

    /// Mutable access to the layer's parameters, for the optimizer.
    pub fn params_mut(&mut self) -> [&mut Param; 2] {
        [&mut self.weight, &mut self.bias]
    }

    /// Zero both gradient accumulators.
    pub fn zero_grad(&mut self) {
        self.weight.zero_grad();
        self.bias.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn forward_shapes() {
        let mut layer = Dense::new(3, 2, Activation::Identity, &mut rng());
        let x = Matrix::from_vec(4, 3, vec![0.1; 12]);
        let y = layer.forward(&x);
        assert_eq!(y.shape(), (4, 2));
    }

    #[test]
    fn identity_layer_is_affine() {
        let mut layer = Dense::new(2, 1, Activation::Identity, &mut rng());
        // Set W = [[1, 2]], b = [3].
        layer.weight.value = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        layer.bias.value = Matrix::from_vec(1, 1, vec![3.0]);
        let y = layer.forward(&Matrix::from_vec(1, 2, vec![10.0, 20.0]));
        assert_eq!(y.as_slice(), &[53.0]);
    }

    /// Gradient check against finite differences on a tiny layer.
    #[test]
    fn gradients_match_finite_differences() {
        let mut layer = Dense::new(2, 2, Activation::Tanh, &mut rng());
        let x = Matrix::from_vec(3, 2, vec![0.5, -0.3, 0.1, 0.9, -0.7, 0.2]);
        // Loss = sum(y); dL/dy = ones.
        let loss = |layer: &Dense, x: &Matrix| layer.forward_inference(x).sum();

        layer.zero_grad();
        let _ = layer.forward(&x);
        let grad_in = layer.backward(&Matrix::filled(3, 2, 1.0));

        let eps = 1e-6;
        // Check weight gradients.
        for i in 0..2 {
            for j in 0..2 {
                let orig = layer.weight.value[(i, j)];
                layer.weight.value[(i, j)] = orig + eps;
                let up = loss(&layer, &x);
                layer.weight.value[(i, j)] = orig - eps;
                let down = loss(&layer, &x);
                layer.weight.value[(i, j)] = orig;
                let numeric = (up - down) / (2.0 * eps);
                let analytic = layer.weight.grad[(i, j)];
                assert!(
                    (numeric - analytic).abs() < 1e-5,
                    "dW[{i}{j}] numeric {numeric} vs analytic {analytic}"
                );
            }
        }
        // Check input gradient.
        for i in 0..3 {
            for j in 0..2 {
                let mut x2 = x.clone();
                x2[(i, j)] += eps;
                let up = loss(&layer, &x2);
                x2[(i, j)] -= 2.0 * eps;
                let down = loss(&layer, &x2);
                let numeric = (up - down) / (2.0 * eps);
                assert!(
                    (numeric - grad_in[(i, j)]).abs() < 1e-5,
                    "dX[{i}{j}] numeric {numeric} vs analytic {}",
                    grad_in[(i, j)]
                );
            }
        }
    }

    #[test]
    fn bias_gradient_sums_over_batch() {
        let mut layer = Dense::new(1, 1, Activation::Identity, &mut rng());
        layer.zero_grad();
        let x = Matrix::from_vec(5, 1, vec![1.0; 5]);
        let _ = layer.forward(&x);
        let _ = layer.backward(&Matrix::filled(5, 1, 2.0));
        assert_eq!(layer.bias.grad[(0, 0)], 10.0);
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_without_forward_panics() {
        let mut layer = Dense::new(2, 2, Activation::Relu, &mut rng());
        let _ = layer.backward(&Matrix::zeros(1, 2));
    }
}
