//! Element-wise activation functions and their derivatives.

use exathlon_linalg::Matrix;

/// Supported activations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// `max(0, x)`.
    Relu,
    /// `x` for `x > 0`, `0.2 x` otherwise (the GAN literature default).
    LeakyRelu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Identity (linear output layers).
    Identity,
}

impl Activation {
    /// Apply the activation element-wise.
    pub fn forward(self, x: &Matrix) -> Matrix {
        match self {
            Activation::Relu => x.map(|v| v.max(0.0)),
            Activation::LeakyRelu => x.map(|v| if v > 0.0 { v } else { 0.2 * v }),
            Activation::Tanh => x.map(f64::tanh),
            Activation::Sigmoid => x.map(sigmoid),
            Activation::Identity => x.clone(),
        }
    }

    /// Derivative with respect to the pre-activation, expressed in terms of
    /// the *output* `y = forward(x)` (cheapest form for all five).
    pub fn derivative_from_output(self, y: &Matrix) -> Matrix {
        match self {
            Activation::Relu => y.map(|v| if v > 0.0 { 1.0 } else { 0.0 }),
            Activation::LeakyRelu => y.map(|v| if v > 0.0 { 1.0 } else { 0.2 }),
            Activation::Tanh => y.map(|v| 1.0 - v * v),
            Activation::Sigmoid => y.map(|v| v * (1.0 - v)),
            Activation::Identity => Matrix::filled(y.rows(), y.cols(), 1.0),
        }
    }
}

/// Numerically-stable logistic sigmoid.
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(vals: &[f64]) -> Matrix {
        Matrix::from_vec(1, vals.len(), vals.to_vec())
    }

    #[test]
    fn relu_forward() {
        let y = Activation::Relu.forward(&m(&[-1.0, 0.0, 2.0]));
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn leaky_relu_forward() {
        let y = Activation::LeakyRelu.forward(&m(&[-1.0, 2.0]));
        assert_eq!(y.as_slice(), &[-0.2, 2.0]);
    }

    #[test]
    fn sigmoid_range_and_symmetry() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!((sigmoid(100.0) - 1.0).abs() < 1e-9);
        assert!(sigmoid(-100.0) < 1e-9);
        assert!((sigmoid(2.0) + sigmoid(-2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-6;
        for act in [
            Activation::Relu,
            Activation::LeakyRelu,
            Activation::Tanh,
            Activation::Sigmoid,
            Activation::Identity,
        ] {
            for &x in &[-1.3, -0.4, 0.7, 1.9] {
                let y0 = act.forward(&m(&[x]));
                let y1 = act.forward(&m(&[x + eps]));
                let numeric = (y1.as_slice()[0] - y0.as_slice()[0]) / eps;
                let analytic = act.derivative_from_output(&y0).as_slice()[0];
                assert!(
                    (numeric - analytic).abs() < 1e-4,
                    "{act:?} at {x}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn identity_is_noop() {
        let x = m(&[1.0, -2.0]);
        assert_eq!(Activation::Identity.forward(&x), x);
    }
}
