//! Element-wise activation functions and their derivatives.
//!
//! The canonical per-element expressions live in
//! [`exathlon_linalg::elemwise::Act`] (shared with the fused SIMD
//! training kernels); the allocating matrix forms here are the retained
//! naive path that `EXATHLON_NAIVE_ELEMENTWISE=1` re-enacts.

use exathlon_linalg::elemwise::Act;
use exathlon_linalg::Matrix;

/// Supported activations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// `max(0, x)`.
    Relu,
    /// `x` for `x > 0`, `0.2 x` otherwise (the GAN literature default).
    LeakyRelu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Identity (linear output layers).
    Identity,
}

impl Activation {
    /// The elemwise-kernel activation kind this maps onto.
    pub fn kind(self) -> Act {
        match self {
            Activation::Relu => Act::Relu,
            Activation::LeakyRelu => Act::LeakyRelu,
            Activation::Tanh => Act::Tanh,
            Activation::Sigmoid => Act::Sigmoid,
            Activation::Identity => Act::Identity,
        }
    }

    /// Stable one-byte wire tag for checkpoints.
    pub fn to_tag(self) -> u8 {
        match self {
            Activation::Relu => 0,
            Activation::LeakyRelu => 1,
            Activation::Tanh => 2,
            Activation::Sigmoid => 3,
            Activation::Identity => 4,
        }
    }

    /// Inverse of [`Activation::to_tag`]; `None` for unknown tags.
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(Activation::Relu),
            1 => Some(Activation::LeakyRelu),
            2 => Some(Activation::Tanh),
            3 => Some(Activation::Sigmoid),
            4 => Some(Activation::Identity),
            _ => None,
        }
    }

    /// Apply the activation element-wise (allocating map — the naive
    /// reference path; training fuses this into the GEMM epilogue).
    /// ReLU uses the explicit `if v > 0` branch rather than `f64::max`
    /// so scalar and SIMD paths agree on the sign of zero.
    pub fn forward(self, x: &Matrix) -> Matrix {
        match self {
            Activation::Identity => x.clone(),
            _ => {
                let kind = self.kind();
                x.map(|v| kind.apply(v))
            }
        }
    }

    /// Derivative with respect to the pre-activation, expressed in terms of
    /// the *output* `y = forward(x)` (cheapest form for all five).
    pub fn derivative_from_output(self, y: &Matrix) -> Matrix {
        match self {
            Activation::Identity => Matrix::filled(y.rows(), y.cols(), 1.0),
            _ => {
                let kind = self.kind();
                y.map(|v| kind.deriv_from_output(v))
            }
        }
    }
}

/// Numerically-stable logistic sigmoid (the canonical implementation
/// lives in [`exathlon_linalg::elemwise::sigmoid`]).
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    exathlon_linalg::elemwise::sigmoid(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(vals: &[f64]) -> Matrix {
        Matrix::from_vec(1, vals.len(), vals.to_vec())
    }

    #[test]
    fn relu_forward() {
        let y = Activation::Relu.forward(&m(&[-1.0, 0.0, 2.0]));
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn leaky_relu_forward() {
        let y = Activation::LeakyRelu.forward(&m(&[-1.0, 2.0]));
        assert_eq!(y.as_slice(), &[-0.2, 2.0]);
    }

    #[test]
    fn sigmoid_range_and_symmetry() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!((sigmoid(100.0) - 1.0).abs() < 1e-9);
        assert!(sigmoid(-100.0) < 1e-9);
        assert!((sigmoid(2.0) + sigmoid(-2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-6;
        for act in [
            Activation::Relu,
            Activation::LeakyRelu,
            Activation::Tanh,
            Activation::Sigmoid,
            Activation::Identity,
        ] {
            for &x in &[-1.3, -0.4, 0.7, 1.9] {
                let y0 = act.forward(&m(&[x]));
                let y1 = act.forward(&m(&[x + eps]));
                let numeric = (y1.as_slice()[0] - y0.as_slice()[0]) / eps;
                let analytic = act.derivative_from_output(&y0).as_slice()[0];
                assert!(
                    (numeric - analytic).abs() < 1e-4,
                    "{act:?} at {x}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn identity_is_noop() {
        let x = m(&[1.0, -2.0]);
        assert_eq!(Activation::Identity.forward(&x), x);
    }
}
