//! A single-layer LSTM with a linear readout, trained by backpropagation
//! through time.
//!
//! This backs the paper's LSTM forecaster (Appendix D.2, following
//! Bontemps et al.): given a window of consecutive records, predict the
//! next record; the relative forecast error becomes the outlier score.
//!
//! Training runs through a reusable [`LstmWorkspace`]: the per-step gate
//! activations, cell and hidden states are staged row-per-step in
//! pre-sized buffers (the same values the historical `StepCache` held)
//! and reused across samples, minibatches and epochs, so steady-state
//! epochs perform no per-step allocation. The `StepCache` path is
//! retained verbatim as the naive reference that
//! `EXATHLON_NAIVE_ELEMENTWISE=1` re-enacts; both paths evaluate the
//! same expressions in the same order and are bitwise identical.

use crate::activation::sigmoid;
use crate::loss::{mse, mse_grad};
use crate::optimizer::{clip_grad_norm, Optimizer};
use crate::param::Param;
use exathlon_linalg::elemwise::{self, naive_elementwise_mode};
use exathlon_linalg::{kernel, obs, Matrix};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// Gate layout inside the stacked `4h` dimension: input, forget, output,
/// candidate.
const GATES: usize = 4;

/// Reused buffers for the fused training path, sized once per
/// (sequence-length, layer) shape. The per-step state matrices store one
/// row per time step so BPTT reads them back without any per-step
/// allocation or clone.
#[derive(Debug, Clone, Default)]
struct LstmWorkspace {
    /// Record-major input copy, `t x in_dim` (the input-side GEMM operand).
    x_mat: Matrix,
    /// `Wxᵀ` scratch for [`kernel::matmul_transpose_into`].
    wxt: Matrix,
    /// Input-side gate pre-activations `Wx·x_t`, `t x 4h`.
    wxx: Matrix,
    /// Post-nonlinearity gates per step, `t x 4h` (`i, f, o, g` blocks).
    gates: Matrix,
    /// Cell states per step, `t x h`.
    c: Matrix,
    /// `tanh(c)` per step, `t x h`.
    tanh_c: Matrix,
    /// Hidden states per step, `t x h`.
    h: Matrix,
    /// Recurrent pre-activation `Wh·h_{t-1}`, `4h`.
    zh: Vec<f64>,
    /// Gate pre-activation accumulator, `4h`.
    z: Vec<f64>,
    /// Readout prediction, `out`.
    y: Vec<f64>,
    /// Loss gradient at the readout, `out`.
    dy: Vec<f64>,
    /// Hidden-state gradient carried backwards, `h`.
    dh: Vec<f64>,
    /// Cell-state gradient carried backwards, `h`.
    dc: Vec<f64>,
    /// Gate pre-activation gradient, `4h`.
    dz: Vec<f64>,
    /// All-zero `t = 0` initial-state stand-in, `h`.
    zero_h: Vec<f64>,
}

impl LstmWorkspace {
    /// Bytes currently staged in the workspace buffers.
    fn bytes(&self) -> usize {
        8 * (self.x_mat.as_slice().len()
            + self.wxt.as_slice().len()
            + self.wxx.as_slice().len()
            + self.gates.as_slice().len()
            + self.c.as_slice().len()
            + self.tanh_c.as_slice().len()
            + self.h.as_slice().len()
            + self.zh.len()
            + self.z.len()
            + self.y.len()
            + self.dy.len()
            + self.dh.len()
            + self.dc.len()
            + self.dz.len()
            + self.zero_h.len())
    }
}

/// A single-layer LSTM network with linear readout from the final hidden
/// state.
#[derive(Debug, Clone)]
pub struct Lstm {
    in_dim: usize,
    hidden: usize,
    out_dim: usize,
    /// Input weights, `4h x in_dim`.
    wx: Param,
    /// Recurrent weights, `4h x h`.
    wh: Param,
    /// Gate biases, `4h x 1`.
    b: Param,
    /// Readout weights, `out x h`.
    wy: Param,
    /// Readout bias, `out x 1`.
    by: Param,
    step: u64,
    ws: LstmWorkspace,
}

/// Per-step forward cache for BPTT — the retained naive path
/// (`EXATHLON_NAIVE_ELEMENTWISE=1`) allocates one per step, exactly as
/// the historical implementation did.
struct StepCache {
    x: Vec<f64>,
    i: Vec<f64>,
    f: Vec<f64>,
    o: Vec<f64>,
    g: Vec<f64>,
    c: Vec<f64>,
    tanh_c: Vec<f64>,
    h: Vec<f64>,
}

impl Lstm {
    /// Create an LSTM mapping sequences of `in_dim` vectors to a single
    /// `out_dim` prediction through `hidden` units.
    pub fn new(in_dim: usize, hidden: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        let mut lstm = Self {
            in_dim,
            hidden,
            out_dim,
            wx: Param::xavier(GATES * hidden, in_dim, in_dim, hidden, rng),
            wh: Param::xavier(GATES * hidden, hidden, hidden, hidden, rng),
            b: Param::zeros(GATES * hidden, 1),
            wy: Param::xavier(out_dim, hidden, hidden, out_dim, rng),
            by: Param::zeros(out_dim, 1),
            step: 0,
            ws: LstmWorkspace::default(),
        };
        // Forget-gate bias init to 1: the standard trick to let gradients
        // flow early in training.
        for j in 0..hidden {
            lstm.b.value[(hidden + j, 0)] = 1.0;
        }
        lstm
    }

    /// Input dimensionality per step.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output (forecast) dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Total scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.wx.count() + self.wh.count() + self.b.count() + self.wy.count() + self.by.count()
    }

    /// Bytes currently held by the reusable training workspace.
    pub fn workspace_bytes(&self) -> usize {
        self.ws.bytes()
    }

    /// Number of steps in a flat record-major sequence buffer.
    ///
    /// # Panics
    /// Panics if `seq.len()` is not a multiple of the input dimension.
    fn steps_of(&self, seq: &[f64]) -> usize {
        if self.in_dim == 0 {
            return 0;
        }
        assert_eq!(seq.len() % self.in_dim, 0, "sequence step dimension mismatch");
        seq.len() / self.in_dim
    }

    /// Flatten an owned per-step sequence into one record-major buffer
    /// (the representation the core forward/backward paths consume).
    fn flatten_seq(&self, seq: &[Vec<f64>]) -> Vec<f64> {
        let mut flat = Vec::with_capacity(seq.len() * self.in_dim);
        for x in seq {
            assert_eq!(x.len(), self.in_dim, "sequence step dimension mismatch");
            flat.extend_from_slice(x);
        }
        flat
    }

    /// Fused forward pass staged in `ws`; returns the step count, with
    /// the prediction left in `ws.y`. Same arithmetic as
    /// [`Lstm::forward_sequence`] expression for expression (one GEMM for
    /// the input-side pre-activations, single-accumulator matvec for the
    /// recurrent side), so every stored value is bitwise identical to the
    /// `StepCache` path — without per-step allocation once warm.
    fn forward_ws(&self, seq: &[f64], ws: &mut LstmWorkspace) -> usize {
        let h_dim = self.hidden;
        let t_len = self.steps_of(seq);
        ws.zero_h.clear();
        ws.zero_h.resize(h_dim, 0.0);
        if t_len == 0 {
            ws.wxx.reset(0, GATES * h_dim);
        } else {
            ws.x_mat.reset(t_len, self.in_dim);
            ws.x_mat.as_mut_slice().copy_from_slice(seq);
            kernel::matmul_transpose_into(&ws.x_mat, &self.wx.value, &mut ws.wxt, &mut ws.wxx);
        }
        ws.gates.reset(t_len, GATES * h_dim);
        ws.c.reset(t_len, h_dim);
        ws.tanh_c.reset(t_len, h_dim);
        ws.h.reset(t_len, h_dim);
        for t in 0..t_len {
            // z = Wx x + Wh h + b, reading the previous stored hidden row.
            let h_prev: &[f64] = if t == 0 { &ws.zero_h } else { ws.h.row(t - 1) };
            kernel::matvec_into(&self.wh.value, h_prev, &mut ws.zh);
            ws.z.clear();
            ws.z.extend_from_slice(ws.wxx.row(t));
            for (zi, (zhi, bi)) in ws.z.iter_mut().zip(ws.zh.iter().zip(self.b.value.as_slice())) {
                *zi += zhi + bi;
            }
            let gates_row = ws.gates.row_mut(t);
            for j in 0..h_dim {
                gates_row[j] = sigmoid(ws.z[j]);
                gates_row[h_dim + j] = sigmoid(ws.z[h_dim + j]);
                gates_row[2 * h_dim + j] = sigmoid(ws.z[2 * h_dim + j]);
                gates_row[3 * h_dim + j] = ws.z[3 * h_dim + j].tanh();
            }
            // Split the cell-state matrix so the previous row stays
            // readable while the current row is written.
            let (c_done, c_rest) = ws.c.as_mut_slice().split_at_mut(t * h_dim);
            let c_prev: &[f64] = if t == 0 { &ws.zero_h } else { &c_done[(t - 1) * h_dim..] };
            let c_cur = &mut c_rest[..h_dim];
            let tanh_row = ws.tanh_c.row_mut(t);
            let h_row = ws.h.row_mut(t);
            let g_row = ws.gates.row(t);
            for j in 0..h_dim {
                let i_g = g_row[j];
                let f_g = g_row[h_dim + j];
                let o_g = g_row[2 * h_dim + j];
                let g_g = g_row[3 * h_dim + j];
                c_cur[j] = f_g * c_prev[j] + i_g * g_g;
                tanh_row[j] = c_cur[j].tanh();
                h_row[j] = o_g * tanh_row[j];
            }
        }
        let h_last: &[f64] = if t_len == 0 { &ws.zero_h } else { ws.h.row(t_len - 1) };
        kernel::matvec_into(&self.wy.value, h_last, &mut ws.y);
        for (yi, bi) in ws.y.iter_mut().zip(self.by.value.as_slice()) {
            *yi += bi;
        }
        t_len
    }

    /// Naive forward pass: the historical `StepCache`-allocating path,
    /// retained as the `EXATHLON_NAIVE_ELEMENTWISE=1` reference.
    fn forward_sequence(&self, seq: &[f64]) -> (Vec<StepCache>, Vec<f64>) {
        let h_dim = self.hidden;
        let t_len = self.steps_of(seq);
        let mut h = vec![0.0; h_dim];
        let mut c = vec![0.0; h_dim];
        let mut caches = Vec::with_capacity(t_len);
        // The input-side gate pre-activations have no recurrent
        // dependency, so all steps go through one GEMM: row `t` of `wxx`
        // is `Wx·x_t`, with the same products in the same order as the
        // per-step matvec (bitwise-identical results). The flat buffer has
        // exactly the row-major layout `from_rows` used to build, so the
        // GEMM input — and everything downstream — is bitwise unchanged.
        let wxx = if t_len == 0 {
            Matrix::zeros(0, GATES * h_dim)
        } else {
            Matrix::from_vec(t_len, self.in_dim, seq.to_vec()).matmul_transpose(&self.wx.value)
        };
        for t in 0..t_len {
            let x = &seq[t * self.in_dim..(t + 1) * self.in_dim];
            // z = Wx x + Wh h + b
            let zh = self.wh.value.matvec(&h);
            let mut z = wxx.row(t).to_vec();
            for (zi, (zhi, bi)) in z.iter_mut().zip(zh.iter().zip(self.b.value.as_slice())) {
                *zi += zhi + bi;
            }
            let mut i_g = vec![0.0; h_dim];
            let mut f_g = vec![0.0; h_dim];
            let mut o_g = vec![0.0; h_dim];
            let mut g_g = vec![0.0; h_dim];
            for j in 0..h_dim {
                i_g[j] = sigmoid(z[j]);
                f_g[j] = sigmoid(z[h_dim + j]);
                o_g[j] = sigmoid(z[2 * h_dim + j]);
                g_g[j] = z[3 * h_dim + j].tanh();
            }
            let mut new_c = vec![0.0; h_dim];
            let mut tanh_c = vec![0.0; h_dim];
            let mut new_h = vec![0.0; h_dim];
            for j in 0..h_dim {
                new_c[j] = f_g[j] * c[j] + i_g[j] * g_g[j];
                tanh_c[j] = new_c[j].tanh();
                new_h[j] = o_g[j] * tanh_c[j];
            }
            caches.push(StepCache {
                x: x.to_vec(),
                i: i_g,
                f: f_g,
                o: o_g,
                g: g_g,
                c: new_c.clone(),
                tanh_c,
                h: new_h.clone(),
            });
            h = new_h;
            c = new_c;
        }
        let mut y = self.wy.value.matvec(&h);
        for (yi, bi) in y.iter_mut().zip(self.by.value.as_slice()) {
            *yi += bi;
        }
        (caches, y)
    }

    /// Predict the next record from a sequence of input records.
    pub fn predict(&self, seq: &[Vec<f64>]) -> Vec<f64> {
        self.predict_flat(&self.flatten_seq(seq))
    }

    /// [`Lstm::predict`] on a flat record-major sequence buffer — e.g. a
    /// zero-copy window view over a `TimeSeries`.
    ///
    /// # Panics
    /// Panics if `seq.len()` is not a multiple of the input dimension.
    pub fn predict_flat(&self, seq: &[f64]) -> Vec<f64> {
        if naive_elementwise_mode() {
            return self.forward_sequence(seq).1;
        }
        // Inference takes `&self` (scoring fans out over shared
        // references), so it stages through a fresh local workspace.
        let mut ws = LstmWorkspace::default();
        self.forward_ws(seq, &mut ws);
        ws.y
    }

    /// Accumulate gradients for one `(sequence, target)` pair; returns the
    /// sample loss.
    fn backward_sequence(&mut self, seq: &[f64], target: &[f64]) -> f64 {
        if naive_elementwise_mode() {
            return self.backward_sequence_naive(seq, target);
        }
        let mut ws = std::mem::take(&mut self.ws);
        let loss = self.backward_ws(seq, target, &mut ws);
        self.ws = ws;
        loss
    }

    /// Fused-path gradient accumulation for one sample: every
    /// intermediate staged in `ws`, gradients accumulated through the
    /// vectorized [`elemwise`] kernels. Bitwise identical to
    /// [`Lstm::backward_sequence_naive`].
    fn backward_ws(&mut self, seq: &[f64], target: &[f64], ws: &mut LstmWorkspace) -> f64 {
        let h_dim = self.hidden;
        let t_len = self.forward_ws(seq, ws);
        assert!(t_len > 0, "empty sequence");

        // Loss and readout gradient, replicating the `mse`/`mse_grad`
        // formulas (and the shape assert) element for element.
        assert_eq!(ws.y.len(), target.len(), "mse shape mismatch");
        let n = ws.y.len().max(1) as f64;
        let loss = ws.y.iter().zip(target).map(|(p, t)| (p - t) * (p - t)).sum::<f64>() / n;
        ws.dy.clear();
        ws.dy.extend(ws.y.iter().zip(target).map(|(p, t)| 2.0 * (p - t) / n));

        // Readout gradients.
        let h_last: &[f64] = ws.h.row(t_len - 1);
        elemwise::outer_acc(&ws.dy, h_last, self.wy.grad.as_mut_slice());
        elemwise::accumulate(self.by.grad.as_mut_slice(), &ws.dy);

        // BPTT.
        kernel::transpose_matvec_into(&self.wy.value, &ws.dy, &mut ws.dh);
        ws.dc.clear();
        ws.dc.resize(h_dim, 0.0);
        ws.dz.clear();
        ws.dz.resize(GATES * h_dim, 0.0);
        for t in (0..t_len).rev() {
            let g_row = ws.gates.row(t);
            let tanh_row = ws.tanh_c.row(t);
            let c_prev: &[f64] = if t == 0 { &ws.zero_h } else { ws.c.row(t - 1) };
            let h_prev: &[f64] = if t == 0 { &ws.zero_h } else { ws.h.row(t - 1) };

            // dL/dc += dL/dh * o * (1 - tanh(c)^2); every `dz` slot is
            // rewritten each step, so the buffer reuse is stateless.
            for j in 0..h_dim {
                let i_g = g_row[j];
                let f_g = g_row[h_dim + j];
                let o_g = g_row[2 * h_dim + j];
                let g_g = g_row[3 * h_dim + j];
                let dtanh = 1.0 - tanh_row[j] * tanh_row[j];
                let dcj = ws.dc[j] + ws.dh[j] * o_g * dtanh;
                let di = dcj * g_g;
                let df = dcj * c_prev[j];
                let do_ = ws.dh[j] * tanh_row[j];
                let dg = dcj * i_g;
                // Through the gate nonlinearities.
                ws.dz[j] = di * i_g * (1.0 - i_g);
                ws.dz[h_dim + j] = df * f_g * (1.0 - f_g);
                ws.dz[2 * h_dim + j] = do_ * o_g * (1.0 - o_g);
                ws.dz[3 * h_dim + j] = dg * (1.0 - g_g * g_g);
                // Carry to previous cell state.
                ws.dc[j] = dcj * f_g;
            }

            // Parameter gradients, accumulated in place.
            let x = &seq[t * self.in_dim..(t + 1) * self.in_dim];
            elemwise::outer_acc(&ws.dz, x, self.wx.grad.as_mut_slice());
            elemwise::outer_acc(&ws.dz, h_prev, self.wh.grad.as_mut_slice());
            elemwise::accumulate(self.b.grad.as_mut_slice(), &ws.dz);
            // Carry to previous hidden state.
            kernel::transpose_matvec_into(&self.wh.value, &ws.dz, &mut ws.dh);
        }
        obs::counter("train.workspace_bytes", ws.bytes() as u64);
        loss
    }

    /// The historical allocating BPTT path, retained as the
    /// `EXATHLON_NAIVE_ELEMENTWISE=1` reference.
    fn backward_sequence_naive(&mut self, seq: &[f64], target: &[f64]) -> f64 {
        let (caches, y) = self.forward_sequence(seq);
        let h_dim = self.hidden;
        let t_len = caches.len();
        assert!(t_len > 0, "empty sequence");

        let pred = Matrix::row_vector(&y);
        let tgt = Matrix::row_vector(target);
        let loss = mse(&pred, &tgt);
        let dy: Vec<f64> = mse_grad(&pred, &tgt).as_slice().to_vec();

        // Readout gradients.
        let h_last = &caches[t_len - 1].h;
        self.wy.grad += &Matrix::outer(&dy, h_last);
        for (g, d) in self.by.grad.as_mut_slice().iter_mut().zip(&dy) {
            *g += d;
        }

        // BPTT.
        let mut dh = self.wy.value.transpose_matvec(&dy);
        let mut dc = vec![0.0; h_dim];
        for t in (0..t_len).rev() {
            let cache = &caches[t];
            let c_prev: Vec<f64> = if t == 0 { vec![0.0; h_dim] } else { caches[t - 1].c.clone() };
            let h_prev: Vec<f64> = if t == 0 { vec![0.0; h_dim] } else { caches[t - 1].h.clone() };

            // dL/dc += dL/dh * o * (1 - tanh(c)^2)
            let mut dz = vec![0.0; GATES * h_dim];
            for j in 0..h_dim {
                let dtanh = 1.0 - cache.tanh_c[j] * cache.tanh_c[j];
                let dcj = dc[j] + dh[j] * cache.o[j] * dtanh;
                let di = dcj * cache.g[j];
                let df = dcj * c_prev[j];
                let do_ = dh[j] * cache.tanh_c[j];
                let dg = dcj * cache.i[j];
                // Through the gate nonlinearities.
                dz[j] = di * cache.i[j] * (1.0 - cache.i[j]);
                dz[h_dim + j] = df * cache.f[j] * (1.0 - cache.f[j]);
                dz[2 * h_dim + j] = do_ * cache.o[j] * (1.0 - cache.o[j]);
                dz[3 * h_dim + j] = dg * (1.0 - cache.g[j] * cache.g[j]);
                // Carry to previous cell state.
                dc[j] = dcj * cache.f[j];
            }

            // Parameter gradients.
            self.wx.grad += &Matrix::outer(&dz, &cache.x);
            self.wh.grad += &Matrix::outer(&dz, &h_prev);
            for (g, d) in self.b.grad.as_mut_slice().iter_mut().zip(&dz) {
                *g += d;
            }
            // Carry to previous hidden state.
            dh = self.wh.value.transpose_matvec(&dz);
        }
        // Meter the dominant fresh allocations this historical path
        // performs (flat copy + wxx + per-step caches, temporaries and
        // outer-product gradient intermediates), so `EXATHLON_PROFILE=1`
        // shows what the fused plane avoids.
        let fwd = t_len * self.in_dim
            + t_len * GATES * h_dim
            + t_len * (17 * h_dim + self.in_dim)
            + y.len();
        let bwd = 3 * y.len()
            + y.len() * h_dim
            + h_dim
            + t_len * (7 * h_dim + GATES * h_dim * (self.in_dim + h_dim));
        obs::counter("train.alloc_bytes", (8 * (fwd + bwd)) as u64);
        loss
    }

    /// One minibatch step over `(sequence, target)` pairs; returns the mean
    /// sample loss. Gradients are clipped to L2 norm 5 before the update.
    pub fn train_batch(&mut self, batch: &[(&[Vec<f64>], &[f64])], opt: &Optimizer) -> f64 {
        let flat: Vec<(Vec<f64>, &[f64])> =
            batch.iter().map(|&(seq, target)| (self.flatten_seq(seq), target)).collect();
        let views: Vec<(&[f64], &[f64])> = flat.iter().map(|(s, t)| (&s[..], *t)).collect();
        self.train_batch_flat(&views, opt)
    }

    /// [`Lstm::train_batch`] on flat record-major sequence buffers.
    pub fn train_batch_flat(&mut self, batch: &[(&[f64], &[f64])], opt: &Optimizer) -> f64 {
        assert!(!batch.is_empty(), "empty batch");
        self.zero_grad();
        let mut loss = 0.0;
        for (seq, target) in batch {
            loss += self.backward_sequence(seq, target);
        }
        // Average gradients over the batch (vectorized in-place scale —
        // the same per-element product as the historical loop).
        let scale = 1.0 / batch.len() as f64;
        for p in self.params_mut() {
            elemwise::scale(p.grad.as_mut_slice(), scale);
        }
        self.step += 1;
        let step = self.step;
        let mut params = self.params_mut();
        clip_grad_norm(&mut params, 5.0);
        opt.step(&mut params, step);
        loss / batch.len() as f64
    }

    /// Train for `epochs` over the `(sequence, target)` dataset with
    /// shuffled minibatches; returns per-epoch mean losses.
    pub fn fit(
        &mut self,
        data: &[(Vec<Vec<f64>>, Vec<f64>)],
        epochs: usize,
        batch_size: usize,
        opt: &Optimizer,
        rng: &mut StdRng,
    ) -> Vec<f64> {
        let flat: Vec<(Vec<f64>, &[f64])> =
            data.iter().map(|(seq, target)| (self.flatten_seq(seq), &target[..])).collect();
        let views: Vec<(&[f64], &[f64])> = flat.iter().map(|(s, t)| (&s[..], *t)).collect();
        self.fit_flat(&views, epochs, batch_size, opt, rng)
    }

    /// [`Lstm::fit`] on flat record-major sequence buffers — the form the
    /// zero-copy data plane feeds directly from window views. Consumes the
    /// same RNG stream (one index shuffle per epoch) and performs the same
    /// arithmetic as the owned-row path, so both are bitwise identical.
    /// The minibatch view buffer and the training workspace are reused
    /// across all epochs.
    pub fn fit_flat(
        &mut self,
        data: &[(&[f64], &[f64])],
        epochs: usize,
        batch_size: usize,
        opt: &Optimizer,
        rng: &mut StdRng,
    ) -> Vec<f64> {
        assert!(batch_size > 0, "batch size must be positive");
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut history = Vec::with_capacity(epochs);
        let mut batch: Vec<(&[f64], &[f64])> = Vec::with_capacity(batch_size);
        for _ in 0..epochs {
            let _sp = obs::span("train", "Lstm.epoch");
            order.shuffle(rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for chunk in order.chunks(batch_size) {
                batch.clear();
                batch.extend(chunk.iter().map(|&i| data[i]));
                epoch_loss += self.train_batch_flat(&batch, opt);
                batches += 1;
            }
            obs::counter("train.samples", data.len() as u64);
            obs::add_records("train", data.len() as u64);
            history.push(epoch_loss / batches.max(1) as f64);
        }
        history
    }

    fn params_mut(&mut self) -> [&mut Param; 5] {
        [&mut self.wx, &mut self.wh, &mut self.b, &mut self.wy, &mut self.by]
    }

    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(21)
    }

    #[test]
    fn shapes_and_counts() {
        let lstm = Lstm::new(3, 8, 3, &mut rng());
        assert_eq!(lstm.in_dim(), 3);
        assert_eq!(lstm.out_dim(), 3);
        let expected = 4 * 8 * 3 + 4 * 8 * 8 + 4 * 8 + 3 * 8 + 3;
        assert_eq!(lstm.param_count(), expected);
        let y = lstm.predict(&[vec![0.1, 0.2, 0.3], vec![0.4, 0.5, 0.6]]);
        assert_eq!(y.len(), 3);
    }

    /// Full BPTT gradient check against finite differences on a tiny net.
    #[test]
    fn bptt_gradients_match_finite_differences() {
        let mut lstm = Lstm::new(2, 3, 2, &mut rng());
        let seq = vec![vec![0.5, -0.3], vec![0.2, 0.8], vec![-0.6, 0.1]];
        let target = vec![0.3, -0.4];

        lstm.zero_grad();
        let _ = lstm.backward_sequence(&seq.concat(), &target);
        let analytic_wx = lstm.wx.grad.clone();
        let analytic_wh = lstm.wh.grad.clone();
        let analytic_b = lstm.b.grad.clone();

        let eps = 1e-6;
        let loss_at = |l: &Lstm| {
            let y = l.predict(&seq);
            let pred = Matrix::row_vector(&y);
            let tgt = Matrix::row_vector(&target);
            mse(&pred, &tgt)
        };
        // Spot-check a handful of entries in each parameter.
        for (r, c) in [(0usize, 0usize), (3, 1), (7, 0), (11, 1)] {
            let orig = lstm.wx.value[(r, c)];
            lstm.wx.value[(r, c)] = orig + eps;
            let up = loss_at(&lstm);
            lstm.wx.value[(r, c)] = orig - eps;
            let down = loss_at(&lstm);
            lstm.wx.value[(r, c)] = orig;
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (numeric - analytic_wx[(r, c)]).abs() < 1e-5,
                "wx[{r},{c}]: numeric {numeric} vs analytic {}",
                analytic_wx[(r, c)]
            );
        }
        for (r, c) in [(0usize, 0usize), (5, 2), (9, 1)] {
            let orig = lstm.wh.value[(r, c)];
            lstm.wh.value[(r, c)] = orig + eps;
            let up = loss_at(&lstm);
            lstm.wh.value[(r, c)] = orig - eps;
            let down = loss_at(&lstm);
            lstm.wh.value[(r, c)] = orig;
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (numeric - analytic_wh[(r, c)]).abs() < 1e-5,
                "wh[{r},{c}]: numeric {numeric} vs analytic {}",
                analytic_wh[(r, c)]
            );
        }
        for r in [0usize, 4, 8, 11] {
            let orig = lstm.b.value[(r, 0)];
            lstm.b.value[(r, 0)] = orig + eps;
            let up = loss_at(&lstm);
            lstm.b.value[(r, 0)] = orig - eps;
            let down = loss_at(&lstm);
            lstm.b.value[(r, 0)] = orig;
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (numeric - analytic_b[(r, 0)]).abs() < 1e-5,
                "b[{r}]: numeric {numeric} vs analytic {}",
                analytic_b[(r, 0)]
            );
        }
    }

    /// The fused workspace path must match the retained `StepCache`
    /// reference bitwise: same loss, same accumulated gradients.
    #[test]
    fn fused_backward_matches_stepcache_reference_bitwise() {
        let mut fused = Lstm::new(2, 5, 2, &mut rng());
        let mut reference = fused.clone();
        let seq: Vec<f64> = (0..12).map(|i| (i as f64 * 0.37 - 1.0).sin()).collect();
        let target = [0.4, -0.7];

        fused.zero_grad();
        let la = fused.backward_ws(&seq, &target, &mut LstmWorkspace::default());
        reference.zero_grad();
        let lb = reference.backward_sequence_naive(&seq, &target);

        assert_eq!(la.to_bits(), lb.to_bits());
        for (pa, pb) in fused.params_mut().into_iter().zip(reference.params_mut()) {
            let got: Vec<u64> = pa.grad.as_slice().iter().map(|v| v.to_bits()).collect();
            let want: Vec<u64> = pb.grad.as_slice().iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, want);
        }
    }

    /// A workspace warmed by a longer sequence must not leak stale rows
    /// into a later, shorter sample: gradients match a cold network's.
    #[test]
    fn workspace_reuse_is_stateless_between_samples() {
        let mut warm = Lstm::new(2, 4, 2, &mut rng());
        let mut fresh = warm.clone();
        let long: Vec<f64> = (0..12).map(|i| (i as f64 * 0.3).sin()).collect();
        warm.zero_grad();
        let _ = warm.backward_sequence(&long, &[0.1, -0.2]);
        warm.zero_grad();

        let short = [0.4, -0.1, 0.2, 0.7];
        fresh.zero_grad();
        let la = warm.backward_sequence(&short, &[0.3, 0.6]);
        let lb = fresh.backward_sequence(&short, &[0.3, 0.6]);
        assert_eq!(la.to_bits(), lb.to_bits());
        for (pa, pb) in warm.params_mut().into_iter().zip(fresh.params_mut()) {
            let got: Vec<u64> = pa.grad.as_slice().iter().map(|v| v.to_bits()).collect();
            let want: Vec<u64> = pb.grad.as_slice().iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn learns_to_forecast_sine() {
        let mut r = rng();
        let mut lstm = Lstm::new(1, 12, 1, &mut r);
        // Sequences of 8 sine samples -> next sample.
        let series: Vec<f64> = (0..200).map(|i| (i as f64 * 0.2).sin()).collect();
        let mut data = Vec::new();
        for start in 0..series.len() - 9 {
            let seq: Vec<Vec<f64>> = (0..8).map(|k| vec![series[start + k]]).collect();
            data.push((seq, vec![series[start + 8]]));
        }
        let history = lstm.fit(&data, 30, 16, &Optimizer::adam(0.01), &mut r);
        assert!(history[29] < 0.01, "LSTM failed to learn the sine: final loss {}", history[29]);
        // Forecast quality on a fresh window.
        let seq: Vec<Vec<f64>> = (100..108).map(|i| vec![series[i]]).collect();
        let pred = lstm.predict(&seq)[0];
        assert!((pred - series[108]).abs() < 0.3, "bad forecast {pred} vs {}", series[108]);
    }

    #[test]
    fn training_reduces_loss() {
        let mut r = rng();
        let mut lstm = Lstm::new(2, 6, 2, &mut r);
        let data: Vec<(Vec<Vec<f64>>, Vec<f64>)> = (0..30)
            .map(|i| {
                let t = i as f64 * 0.3;
                let seq = vec![vec![t.sin(), t.cos()], vec![(t + 0.3).sin(), (t + 0.3).cos()]];
                (seq, vec![(t + 0.6).sin(), (t + 0.6).cos()])
            })
            .collect();
        let h = lstm.fit(&data, 40, 8, &Optimizer::adam(0.01), &mut r);
        assert!(h[39] < h[0], "loss should decrease: {} -> {}", h[0], h[39]);
    }

    #[test]
    fn deterministic_given_seed() {
        let build = || {
            let mut r = StdRng::seed_from_u64(5);
            let lstm = Lstm::new(2, 4, 2, &mut r);
            lstm.predict(&[vec![0.1, 0.2]])
        };
        assert_eq!(build(), build());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_input_dim_panics() {
        let lstm = Lstm::new(3, 4, 3, &mut rng());
        let _ = lstm.predict(&[vec![1.0]]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_flat_len_panics() {
        let lstm = Lstm::new(3, 4, 3, &mut rng());
        let _ = lstm.predict_flat(&[1.0, 2.0]);
    }

    #[test]
    fn flat_apis_match_owned_bitwise() {
        let data: Vec<(Vec<Vec<f64>>, Vec<f64>)> = (0..20)
            .map(|i| {
                let t = i as f64 * 0.4;
                let seq = vec![vec![t.sin(), t.cos()], vec![(t + 0.4).sin(), (t + 0.4).cos()]];
                (seq, vec![(t + 0.8).sin(), (t + 0.8).cos()])
            })
            .collect();
        let flat: Vec<(Vec<f64>, Vec<f64>)> =
            data.iter().map(|(s, t)| (s.concat(), t.clone())).collect();
        let views: Vec<(&[f64], &[f64])> = flat.iter().map(|(s, t)| (&s[..], &t[..])).collect();

        let mut owned = Lstm::new(2, 5, 2, &mut rng());
        let mut flat_net = owned.clone();
        let h_owned = owned.fit(&data, 4, 6, &Optimizer::adam(0.01), &mut rng());
        let h_flat = flat_net.fit_flat(&views, 4, 6, &Optimizer::adam(0.01), &mut rng());
        assert_eq!(h_owned, h_flat);

        let probe = vec![vec![0.3, -0.2], vec![0.1, 0.9], vec![-0.5, 0.4]];
        let a = owned.predict(&probe);
        let b = flat_net.predict_flat(&probe.concat());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
