//! Trainable parameters: value, gradient, and Adam moment buffers bundled
//! together so optimizers can step any network uniformly.

use exathlon_linalg::Matrix;
use rand::rngs::StdRng;
use rand::Rng;

/// A trainable matrix parameter with its gradient accumulator and Adam
/// moment estimates.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current value.
    pub value: Matrix,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Matrix,
    /// Adam first-moment estimate.
    pub m: Matrix,
    /// Adam second-moment estimate.
    pub v: Matrix,
}

impl Param {
    /// A zero-initialized parameter (used for biases).
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            value: Matrix::zeros(rows, cols),
            grad: Matrix::zeros(rows, cols),
            m: Matrix::zeros(rows, cols),
            v: Matrix::zeros(rows, cols),
        }
    }

    /// Xavier/Glorot uniform initialization: `U(-a, a)` with
    /// `a = sqrt(6 / (fan_in + fan_out))`. Suits tanh/sigmoid layers.
    pub fn xavier(
        rows: usize,
        cols: usize,
        fan_in: usize,
        fan_out: usize,
        rng: &mut StdRng,
    ) -> Self {
        let a = (6.0 / (fan_in + fan_out) as f64).sqrt();
        let mut p = Self::zeros(rows, cols);
        for x in p.value.as_mut_slice() {
            *x = rng.gen_range(-a..a);
        }
        p
    }

    /// He (Kaiming) normal-ish initialization via a uniform with matched
    /// variance: suits ReLU layers.
    pub fn he(rows: usize, cols: usize, fan_in: usize, rng: &mut StdRng) -> Self {
        let a = (6.0 / fan_in as f64).sqrt();
        let mut p = Self::zeros(rows, cols);
        for x in p.value.as_mut_slice() {
            *x = rng.gen_range(-a..a);
        }
        p
    }

    /// Wrap a restored value matrix with fresh (zero) gradient and moment
    /// buffers. Inference after a checkpoint restore only reads `value`,
    /// so zeroed optimizer state is exact; resumed training restarts its
    /// Adam moments, as a fresh fit would.
    pub fn from_value(value: Matrix) -> Self {
        let (r, c) = value.shape();
        Self { value, grad: Matrix::zeros(r, c), m: Matrix::zeros(r, c), v: Matrix::zeros(r, c) }
    }

    /// Zero the gradient accumulator (one memset-able fill, same bits as
    /// the historical scalar loop).
    pub fn zero_grad(&mut self) {
        self.grad.as_mut_slice().fill(0.0);
    }

    /// Number of scalar parameters.
    pub fn count(&self) -> usize {
        let (r, c) = self.value.shape();
        r * c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zeros_shape() {
        let p = Param::zeros(3, 4);
        assert_eq!(p.value.shape(), (3, 4));
        assert_eq!(p.count(), 12);
        assert!(p.value.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn xavier_within_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = Param::xavier(10, 10, 10, 10, &mut rng);
        let a = (6.0 / 20.0_f64).sqrt();
        assert!(p.value.as_slice().iter().all(|&x| x.abs() <= a));
        // Not all zero.
        assert!(p.value.max_abs() > 0.0);
    }

    #[test]
    fn he_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(2);
        let wide = Param::he(5, 100, 100, &mut rng);
        let narrow = Param::he(5, 4, 4, &mut rng);
        assert!(wide.value.max_abs() < narrow.value.max_abs() + 1.3);
    }

    #[test]
    fn zero_grad_resets() {
        let mut p = Param::zeros(2, 2);
        p.grad[(0, 0)] = 5.0;
        p.zero_grad();
        assert_eq!(p.grad[(0, 0)], 0.0);
    }

    #[test]
    fn init_is_deterministic() {
        let a = Param::xavier(4, 4, 4, 4, &mut StdRng::seed_from_u64(9));
        let b = Param::xavier(4, 4, 4, 4, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.value, b.value);
    }
}
