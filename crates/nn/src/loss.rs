//! Losses: mean squared error (forecasting, reconstruction) and binary
//! cross-entropy (GAN discriminator/generator objectives).

use exathlon_linalg::Matrix;

/// Mean squared error over all elements of a batch.
pub fn mse(pred: &Matrix, target: &Matrix) -> f64 {
    assert_eq!(pred.shape(), target.shape(), "mse shape mismatch");
    let n = (pred.rows() * pred.cols()).max(1) as f64;
    pred.as_slice().iter().zip(target.as_slice()).map(|(p, t)| (p - t) * (p - t)).sum::<f64>() / n
}

/// Gradient of [`mse`] with respect to `pred`.
pub fn mse_grad(pred: &Matrix, target: &Matrix) -> Matrix {
    assert_eq!(pred.shape(), target.shape(), "mse shape mismatch");
    let n = (pred.rows() * pred.cols()).max(1) as f64;
    Matrix::from_vec(
        pred.rows(),
        pred.cols(),
        pred.as_slice().iter().zip(target.as_slice()).map(|(p, t)| 2.0 * (p - t) / n).collect(),
    )
}

/// [`mse_grad`] into a caller-reused buffer — bitwise-identical contents,
/// no fresh allocation once `out` has grown to the steady batch shape.
pub fn mse_grad_into(pred: &Matrix, target: &Matrix, out: &mut Matrix) {
    assert_eq!(pred.shape(), target.shape(), "mse shape mismatch");
    let n = (pred.rows() * pred.cols()).max(1) as f64;
    out.reset(pred.rows(), pred.cols());
    for ((o, p), t) in out.as_mut_slice().iter_mut().zip(pred.as_slice()).zip(target.as_slice()) {
        *o = 2.0 * (p - t) / n;
    }
}

/// Per-row squared error (useful for per-sample outlier scores).
pub fn row_squared_errors(pred: &Matrix, target: &Matrix) -> Vec<f64> {
    assert_eq!(pred.shape(), target.shape(), "row error shape mismatch");
    let m = pred.cols().max(1) as f64;
    (0..pred.rows())
        .map(|i| {
            pred.row(i).iter().zip(target.row(i)).map(|(p, t)| (p - t) * (p - t)).sum::<f64>() / m
        })
        .collect()
}

/// Binary cross-entropy for probabilities in `(0, 1)` against 0/1 targets,
/// averaged over the batch. Inputs are clamped away from 0 and 1 for
/// stability.
pub fn bce(pred: &Matrix, target: &Matrix) -> f64 {
    assert_eq!(pred.shape(), target.shape(), "bce shape mismatch");
    let n = (pred.rows() * pred.cols()).max(1) as f64;
    pred.as_slice()
        .iter()
        .zip(target.as_slice())
        .map(|(&p, &t)| {
            let p = p.clamp(1e-7, 1.0 - 1e-7);
            -(t * p.ln() + (1.0 - t) * (1.0 - p).ln())
        })
        .sum::<f64>()
        / n
}

/// Gradient of [`bce`] with respect to `pred`.
pub fn bce_grad(pred: &Matrix, target: &Matrix) -> Matrix {
    assert_eq!(pred.shape(), target.shape(), "bce shape mismatch");
    let n = (pred.rows() * pred.cols()).max(1) as f64;
    Matrix::from_vec(
        pred.rows(),
        pred.cols(),
        pred.as_slice()
            .iter()
            .zip(target.as_slice())
            .map(|(&p, &t)| {
                let p = p.clamp(1e-7, 1.0 - 1e-7);
                ((1.0 - t) / (1.0 - p) - t / p) / n
            })
            .collect(),
    )
}

/// [`bce_grad`] into a caller-reused buffer — bitwise-identical contents,
/// no fresh allocation once `out` has grown to the steady batch shape.
pub fn bce_grad_into(pred: &Matrix, target: &Matrix, out: &mut Matrix) {
    assert_eq!(pred.shape(), target.shape(), "bce shape mismatch");
    let n = (pred.rows() * pred.cols()).max(1) as f64;
    out.reset(pred.rows(), pred.cols());
    for ((o, &p), &t) in out.as_mut_slice().iter_mut().zip(pred.as_slice()).zip(target.as_slice()) {
        let p = p.clamp(1e-7, 1.0 - 1e-7);
        *o = ((1.0 - t) / (1.0 - p) - t / p) / n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_zero_for_identical() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(mse(&a, &a), 0.0);
    }

    #[test]
    fn mse_known_value() {
        let p = Matrix::from_vec(1, 2, vec![1.0, 3.0]);
        let t = Matrix::from_vec(1, 2, vec![0.0, 1.0]);
        assert!((mse(&p, &t) - 2.5).abs() < 1e-12); // (1 + 4) / 2
    }

    #[test]
    fn mse_grad_matches_finite_difference() {
        let p = Matrix::from_vec(1, 3, vec![0.5, -0.2, 1.1]);
        let t = Matrix::from_vec(1, 3, vec![0.0, 0.3, 1.0]);
        let g = mse_grad(&p, &t);
        let eps = 1e-7;
        for j in 0..3 {
            let mut p2 = p.clone();
            p2[(0, j)] += eps;
            let numeric = (mse(&p2, &t) - mse(&p, &t)) / eps;
            assert!((numeric - g[(0, j)]).abs() < 1e-5);
        }
    }

    #[test]
    fn row_errors_per_sample() {
        let p = Matrix::from_vec(2, 2, vec![1.0, 1.0, 0.0, 0.0]);
        let t = Matrix::from_vec(2, 2, vec![0.0, 0.0, 0.0, 0.0]);
        assert_eq!(row_squared_errors(&p, &t), vec![1.0, 0.0]);
    }

    #[test]
    fn bce_perfect_prediction_near_zero() {
        let p = Matrix::from_vec(1, 2, vec![0.9999, 0.0001]);
        let t = Matrix::from_vec(1, 2, vec![1.0, 0.0]);
        assert!(bce(&p, &t) < 0.001);
    }

    #[test]
    fn bce_grad_matches_finite_difference() {
        let p = Matrix::from_vec(1, 2, vec![0.3, 0.8]);
        let t = Matrix::from_vec(1, 2, vec![1.0, 0.0]);
        let g = bce_grad(&p, &t);
        let eps = 1e-7;
        for j in 0..2 {
            let mut p2 = p.clone();
            p2[(0, j)] += eps;
            let numeric = (bce(&p2, &t) - bce(&p, &t)) / eps;
            assert!((numeric - g[(0, j)]).abs() < 1e-4);
        }
    }

    #[test]
    fn grad_into_matches_allocating_grads() {
        let p = Matrix::from_vec(2, 2, vec![0.3, 0.8, -0.4, 1.2]);
        let t = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.5, 1.0]);
        let mut buf = Matrix::zeros(0, 0);
        mse_grad_into(&p, &t, &mut buf);
        assert_eq!(buf, mse_grad(&p, &t));
        bce_grad_into(&p, &t, &mut buf);
        assert_eq!(buf, bce_grad(&p, &t));
    }

    #[test]
    fn bce_clamps_extremes() {
        let p = Matrix::from_vec(1, 1, vec![0.0]);
        let t = Matrix::from_vec(1, 1, vec![1.0]);
        assert!(bce(&p, &t).is_finite());
        assert!(bce_grad(&p, &t).as_slice()[0].is_finite());
    }
}
