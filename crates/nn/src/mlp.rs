//! A sequential multi-layer perceptron.
//!
//! This is the workhorse behind the dense autoencoder (§D.2 "AE") and the
//! three BiGAN networks: a stack of [`Dense`] layers trained with
//! minibatch backprop.

use crate::activation::Activation;
use crate::dense::Dense;
use crate::loss::{mse, mse_grad, mse_grad_into};
use crate::optimizer::Optimizer;
use crate::param::Param;
use exathlon_linalg::elemwise::naive_elementwise_mode;
use exathlon_linalg::{obs, Matrix};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// Reused network-level training buffers: the loss gradient and the two
/// ping-pong buffers the backward chain alternates between.
#[derive(Debug, Clone, Default)]
struct MlpWorkspace {
    loss_grad: Matrix,
    grad_a: Matrix,
    grad_b: Matrix,
    dx_sink: Matrix,
}

/// A feed-forward network: `layers[0]` sees the input.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
    step: u64,
    ws: MlpWorkspace,
}

impl Mlp {
    /// Build from `(in, out, activation)` specs chained in order.
    ///
    /// # Panics
    /// Panics if consecutive layer dimensions do not chain, or `specs` is
    /// empty.
    pub fn new(specs: &[(usize, usize, Activation)], rng: &mut StdRng) -> Self {
        assert!(!specs.is_empty(), "MLP needs at least one layer");
        for w in specs.windows(2) {
            assert_eq!(w[0].1, w[1].0, "layer dimensions do not chain");
        }
        let layers = specs.iter().map(|&(i, o, a)| Dense::new(i, o, a, rng)).collect();
        Self { layers, step: 0, ws: MlpWorkspace::default() }
    }

    /// Convenience: a symmetric autoencoder `in -> hidden... -> code ->
    /// hidden... -> in` with the given activation in hidden layers and a
    /// linear output.
    pub fn autoencoder(
        in_dim: usize,
        hidden: &[usize],
        code: usize,
        activation: Activation,
        rng: &mut StdRng,
    ) -> Self {
        let mut specs = Vec::new();
        let mut prev = in_dim;
        for &h in hidden {
            specs.push((prev, h, activation));
            prev = h;
        }
        specs.push((prev, code, activation));
        prev = code;
        for &h in hidden.iter().rev() {
            specs.push((prev, h, activation));
            prev = h;
        }
        specs.push((prev, in_dim, Activation::Identity));
        Self::new(&specs, rng)
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Total scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.weight.count() + l.bias.count()).sum()
    }

    /// Forward pass with activation caching (training mode). Returns a
    /// copy of the output; the allocation-free loops use
    /// [`Mlp::forward_cached`] + [`Mlp::output`] instead.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        self.forward_cached(x);
        self.output().clone()
    }

    /// Forward pass through the layer workspaces: each layer reads the
    /// previous layer's cached output directly — no inter-layer clones.
    pub fn forward_cached(&mut self, x: &Matrix) {
        for i in 0..self.layers.len() {
            if i == 0 {
                self.layers[0].forward_cached(x);
            } else {
                let (prev, rest) = self.layers.split_at_mut(i);
                rest[0].forward_cached(prev[i - 1].output());
            }
        }
    }

    /// The cached output of the last [`Mlp::forward_cached`].
    ///
    /// # Panics
    /// Panics if no forward pass has run.
    pub fn output(&self) -> &Matrix {
        self.layers.last().expect("non-empty").output()
    }

    /// Forward pass without caching (inference).
    pub fn predict(&self, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        for layer in &self.layers {
            h = layer.forward_inference(&h);
        }
        h
    }

    /// Backward pass through all layers; returns `dL/dx`. The
    /// allocation-free loops use [`Mlp::backward_into`] instead.
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let mut dx = Matrix::default();
        self.backward_into(grad_out, &mut dx);
        dx
    }

    /// [`Mlp::backward`] into a caller-reused `dx` buffer: the chain
    /// alternates between two reused workspace buffers instead of
    /// allocating a gradient matrix per layer.
    pub fn backward_into(&mut self, grad_out: &Matrix, dx: &mut Matrix) {
        let mut ga = std::mem::take(&mut self.ws.grad_a);
        let mut gb = std::mem::take(&mut self.ws.grad_b);
        let n = self.layers.len();
        for (k, layer) in self.layers.iter_mut().rev().enumerate() {
            let last = k + 1 == n;
            let src: &Matrix = if k == 0 { grad_out } else { &ga };
            if last {
                layer.backward_into(src, dx);
            } else {
                layer.backward_into(src, &mut gb);
                std::mem::swap(&mut ga, &mut gb);
            }
        }
        self.ws.grad_a = ga;
        self.ws.grad_b = gb;
    }

    /// All parameters, for optimizer steps and gradient clipping.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| {
                let [w, b] = l.params_mut();
                [w, b]
            })
            .collect()
    }

    /// Zero all gradient accumulators.
    pub fn zero_grad(&mut self) {
        for l in &mut self.layers {
            l.zero_grad();
        }
    }

    /// Apply one optimizer step (increments the internal step counter).
    /// Updates go layer by layer — per-parameter updates are independent,
    /// so this matches a flat-list step while skipping the `Vec<&mut
    /// Param>` collection per call.
    pub fn apply_step(&mut self, opt: &Optimizer) {
        self.step += 1;
        let step = self.step;
        for layer in &mut self.layers {
            let mut params = layer.params_mut();
            opt.step(&mut params, step);
        }
    }

    /// One supervised minibatch step against `targets` under MSE; returns
    /// the batch loss. Allocation-free at steady state: forward and
    /// backward run through the layer workspaces and the loss gradient
    /// lands in a reused buffer.
    pub fn train_batch(&mut self, x: &Matrix, targets: &Matrix, opt: &Optimizer) -> f64 {
        self.zero_grad();
        self.forward_cached(x);
        let mut lg = std::mem::take(&mut self.ws.loss_grad);
        let loss = {
            let pred = self.layers.last().expect("non-empty").output();
            let loss = mse(pred, targets);
            if naive_elementwise_mode() {
                // Historical path: fresh gradient matrix per step.
                lg = mse_grad(pred, targets);
                obs::counter("train.alloc_bytes", (8 * lg.as_slice().len()) as u64);
            } else {
                mse_grad_into(pred, targets, &mut lg);
            }
            loss
        };
        let mut sink = std::mem::take(&mut self.ws.dx_sink);
        self.backward_into(&lg, &mut sink);
        self.ws.loss_grad = lg;
        self.ws.dx_sink = sink;
        self.apply_step(opt);
        loss
    }

    /// Train for `epochs` over `(inputs, targets)` rows with shuffled
    /// minibatches; returns the loss after each epoch.
    ///
    /// For autoencoders pass the inputs as their own targets.
    pub fn fit(
        &mut self,
        inputs: &Matrix,
        targets: &Matrix,
        epochs: usize,
        batch_size: usize,
        opt: &Optimizer,
        rng: &mut StdRng,
    ) -> Vec<f64> {
        assert_eq!(inputs.rows(), targets.rows(), "inputs/targets row mismatch");
        assert!(batch_size > 0, "batch size must be positive");
        let n = inputs.rows();
        let mut order: Vec<usize> = (0..n).collect();
        let mut history = Vec::with_capacity(epochs);
        // Minibatch scratch reused across the whole run: batch assembly
        // settles into two steady-state buffers instead of two fresh
        // allocations per step (contents are bitwise identical).
        let mut xb = Matrix::zeros(0, 0);
        let mut tb = Matrix::zeros(0, 0);
        for _ in 0..epochs {
            let _sp = obs::span("train", "Mlp.epoch");
            order.shuffle(rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for chunk in order.chunks(batch_size) {
                inputs.select_rows_into(chunk, &mut xb);
                targets.select_rows_into(chunk, &mut tb);
                epoch_loss += self.train_batch(&xb, &tb, opt);
                batches += 1;
            }
            obs::counter("train.samples", n as u64);
            obs::add_records("train", n as u64);
            history.push(epoch_loss / batches.max(1) as f64);
        }
        history
    }

    /// Serialize the network's learned state into `w`: layer count, each
    /// layer's weights, and the optimizer step counter. Workspaces are
    /// rebuilt empty on decode.
    pub fn encode(&self, w: &mut exathlon_linalg::codec::ByteWriter) {
        w.put_usize(self.layers.len());
        for layer in &self.layers {
            layer.encode(w);
        }
        w.put_u64(self.step);
    }

    /// Decode a network written by [`Mlp::encode`]. Restored weights are
    /// bitwise identical, so [`Mlp::predict`] reproduces the original
    /// outputs exactly.
    pub fn decode(
        r: &mut exathlon_linalg::codec::ByteReader<'_>,
    ) -> Result<Self, exathlon_linalg::codec::CodecError> {
        let n = r.get_len(1)?;
        if n == 0 {
            return Err(exathlon_linalg::codec::CodecError::Corrupt("MLP with no layers"));
        }
        let mut layers = Vec::with_capacity(n);
        for _ in 0..n {
            layers.push(Dense::decode(r)?);
        }
        for pair in layers.windows(2) {
            if pair[0].out_dim() != pair[1].in_dim() {
                return Err(exathlon_linalg::codec::CodecError::Corrupt(
                    "MLP layer dimensions do not chain",
                ));
            }
        }
        let step = r.get_u64()?;
        Ok(Self { layers, step, ws: MlpWorkspace::default() })
    }

    /// Bytes currently held by the training workspaces (network-level
    /// buffers plus every layer's).
    pub fn workspace_bytes(&self) -> usize {
        let ws = 8
            * (self.ws.loss_grad.as_slice().len()
                + self.ws.grad_a.as_slice().len()
                + self.ws.grad_b.as_slice().len()
                + self.ws.dx_sink.as_slice().len());
        ws + self.layers.iter().map(Dense::workspace_bytes).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn construction_and_shapes() {
        let mlp = Mlp::new(&[(4, 8, Activation::Relu), (8, 2, Activation::Identity)], &mut rng());
        assert_eq!(mlp.in_dim(), 4);
        assert_eq!(mlp.out_dim(), 2);
        assert_eq!(mlp.param_count(), 4 * 8 + 8 + 8 * 2 + 2);
    }

    #[test]
    #[should_panic(expected = "chain")]
    fn mismatched_layers_panic() {
        let _ = Mlp::new(&[(4, 8, Activation::Relu), (9, 2, Activation::Identity)], &mut rng());
    }

    #[test]
    fn autoencoder_is_symmetric() {
        let ae = Mlp::autoencoder(10, &[8], 3, Activation::Tanh, &mut rng());
        assert_eq!(ae.in_dim(), 10);
        assert_eq!(ae.out_dim(), 10);
        assert_eq!(ae.layers.len(), 4); // 10-8, 8-3, 3-8, 8-10
    }

    #[test]
    fn learns_linear_map() {
        // y = 2 x0 - x1, learnable exactly by a linear MLP.
        let mut r = rng();
        let mut mlp = Mlp::new(&[(2, 1, Activation::Identity)], &mut r);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..64 {
            let a = (i % 8) as f64 / 8.0;
            let b = (i / 8) as f64 / 8.0;
            xs.push(vec![a, b]);
            ys.push(vec![2.0 * a - b]);
        }
        let x = Matrix::from_rows(&xs);
        let y = Matrix::from_rows(&ys);
        let history = mlp.fit(&x, &y, 300, 16, &Optimizer::adam(0.01), &mut r);
        assert!(history[299] < 1e-4, "did not converge: {}", history[299]);
    }

    #[test]
    fn autoencoder_reconstructs_low_rank_data() {
        // Data on a 1-D manifold in 4-D space: x = [t, 2t, -t, 0.5t].
        let mut r = rng();
        let mut ae = Mlp::autoencoder(4, &[], 1, Activation::Identity, &mut r);
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| {
                let t = i as f64 / 50.0 - 0.5;
                vec![t, 2.0 * t, -t, 0.5 * t]
            })
            .collect();
        let x = Matrix::from_rows(&rows);
        let history = ae.fit(&x, &x, 400, 10, &Optimizer::adam(0.01), &mut r);
        assert!(history[399] < 1e-3, "AE did not converge: {}", history[399]);
    }

    #[test]
    fn fit_loss_decreases() {
        let mut r = rng();
        let mut mlp = Mlp::new(&[(3, 6, Activation::Tanh), (6, 1, Activation::Identity)], &mut r);
        let x = Matrix::from_fn(40, 3, |i, j| ((i * 3 + j) as f64 * 0.37).sin());
        let y = Matrix::from_fn(40, 1, |i, _| (i as f64 * 0.2).cos());
        let h = mlp.fit(&x, &y, 50, 8, &Optimizer::adam(0.005), &mut r);
        assert!(h[49] < h[0], "loss should decrease: {} -> {}", h[0], h[49]);
    }

    #[test]
    fn codec_round_trip_predicts_bitwise() {
        let mut r = rng();
        let mut mlp = Mlp::autoencoder(5, &[4], 2, Activation::Tanh, &mut r);
        let x = Matrix::from_fn(12, 5, |i, j| ((i * 5 + j) as f64 * 0.17).sin());
        let _ = mlp.fit(&x, &x, 3, 4, &Optimizer::adam(0.01), &mut r);
        let mut w = exathlon_linalg::codec::ByteWriter::new();
        mlp.encode(&mut w);
        let bytes = w.into_bytes();
        let restored = Mlp::decode(&mut exathlon_linalg::codec::ByteReader::new(&bytes)).unwrap();
        let a = mlp.predict(&x);
        let b = restored.predict(&x);
        for (p, q) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
        assert_eq!(restored.step, mlp.step);
        for cut in 0..bytes.len() {
            let mut rd = exathlon_linalg::codec::ByteReader::new(&bytes[..cut]);
            assert!(Mlp::decode(&mut rd).is_err(), "truncation at {cut} must error");
        }
    }

    #[test]
    fn predict_matches_forward() {
        let mut mlp = Mlp::new(&[(2, 3, Activation::Tanh)], &mut rng());
        let x = Matrix::from_vec(2, 2, vec![0.1, 0.2, 0.3, 0.4]);
        let a = mlp.forward(&x);
        let b = mlp.predict(&x);
        assert_eq!(a, b);
    }
}
