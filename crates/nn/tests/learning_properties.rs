//! Property-based and behavioural tests on the neural substrate: training
//! must make progress on learnable problems for a range of shapes and
//! seeds, and inference must be shape-safe.

use exathlon_linalg::Matrix;
use exathlon_nn::activation::Activation;
use exathlon_nn::optimizer::Optimizer;
use exathlon_nn::Mlp;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A linear MLP fits a random linear map from any seed.
    #[test]
    fn linear_mlp_fits_linear_map(seed in 0u64..1000, w0 in -2.0f64..2.0, w1 in -2.0f64..2.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mlp = Mlp::new(&[(2, 1, Activation::Identity)], &mut rng);
        let x = Matrix::from_fn(64, 2, |i, j| ((i * 2 + j) as f64 * 0.61).sin());
        let y = Matrix::from_fn(64, 1, |i, _| w0 * x[(i, 0)] + w1 * x[(i, 1)]);
        let history = mlp.fit(&x, &y, 400, 16, &Optimizer::adam(0.02), &mut rng);
        prop_assert!(
            history[399] < 5e-3,
            "seed {seed}: failed to fit y = {w0} x0 + {w1} x1 (loss {})",
            history[399]
        );
    }

    /// Training never produces non-finite losses for reasonable learning
    /// rates.
    #[test]
    fn training_stays_finite(seed in 0u64..1000, lr in 1e-4f64..5e-3) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mlp = Mlp::new(
            &[(3, 8, Activation::Tanh), (8, 3, Activation::Identity)],
            &mut rng,
        );
        let x = Matrix::from_fn(32, 3, |i, j| ((i + j) as f64 * 0.37).sin());
        let history = mlp.fit(&x, &x, 30, 8, &Optimizer::adam(lr), &mut rng);
        prop_assert!(history.iter().all(|l| l.is_finite()), "diverged: {history:?}");
    }

    /// Prediction shape always matches (batch, out_dim) for arbitrary
    /// batch sizes.
    #[test]
    fn predict_shape(n in 1usize..40, in_dim in 1usize..6, out_dim in 1usize..6) {
        let mut rng = StdRng::seed_from_u64(5);
        let mlp = Mlp::new(&[(in_dim, out_dim, Activation::Tanh)], &mut rng);
        let x = Matrix::zeros(n, in_dim);
        let y = mlp.predict(&x);
        prop_assert_eq!(y.shape(), (n, out_dim));
    }
}

/// Autoencoder bottleneck behaviour: reconstruction of rank-1 data through
/// a 1-unit code succeeds; through a 0-variance direction the residual
/// stays bounded.
#[test]
fn autoencoder_bottleneck_rank() {
    let mut rng = StdRng::seed_from_u64(3);
    let mut ae = Mlp::autoencoder(3, &[], 1, Activation::Identity, &mut rng);
    let x = Matrix::from_fn(60, 3, |i, j| {
        let t = i as f64 / 30.0 - 1.0;
        t * [1.0, -2.0, 0.5][j]
    });
    let h = ae.fit(&x, &x, 500, 12, &Optimizer::adam(0.01), &mut rng);
    assert!(h[499] < 1e-3, "rank-1 data must pass a 1-unit bottleneck: {}", h[499]);
}
