//! Property-based tests (proptest) on the evaluation metrics: the
//! invariants the benchmark's scoring rests on must hold for *arbitrary*
//! inputs, not just the curated unit-test cases.

use exathlon::metrics::auprc::auprc;
use exathlon::metrics::ed_metrics::consistency_entropy;
use exathlon::metrics::presets::{evaluate_at_level, AdLevel};
use exathlon::metrics::range_pr::{f_score, range_precision, range_recall, RangeParams};
use exathlon::metrics::ranges::{flags_from_ranges, ranges_from_flags};
use exathlon::metrics::Range;
use proptest::prelude::*;

/// Strategy: a set of up to 6 disjoint ranges within [0, 200).
fn disjoint_ranges() -> impl Strategy<Value = Vec<Range>> {
    proptest::collection::vec((0u64..190, 1u64..20), 0..6).prop_map(|pairs| {
        let mut ranges = Vec::new();
        let mut cursor = 0u64;
        for (gap, len) in pairs {
            let start = cursor + gap % 40;
            let end = start + len;
            ranges.push(Range::new(start, end));
            cursor = end + 1;
        }
        ranges
    })
}

proptest! {
    /// Range precision and recall are always in [0, 1].
    #[test]
    fn range_pr_bounded(real in disjoint_ranges(), pred in disjoint_ranges()) {
        let p = RangeParams::classical();
        let precision = range_precision(&real, &pred, &p);
        let recall = range_recall(&real, &pred, &p);
        prop_assert!((0.0..=1.0).contains(&precision), "precision {precision}");
        prop_assert!((0.0..=1.0).contains(&recall), "recall {recall}");
        prop_assert!((0.0..=1.0).contains(&f_score(precision, recall, 1.0)));
    }

    /// The benchmark's core design invariant: scores never increase from
    /// AD1 to AD4, for ANY prediction (§4.1).
    #[test]
    fn ad_levels_monotone(real in disjoint_ranges(), pred in disjoint_ranges()) {
        let scores: Vec<_> = AdLevel::ALL
            .iter()
            .map(|&l| evaluate_at_level(&real, &pred, l))
            .collect();
        for w in scores.windows(2) {
            prop_assert!(w[0].recall >= w[1].recall - 1e-9);
            prop_assert!(w[0].precision >= w[1].precision - 1e-9);
        }
    }

    /// Predicting exactly the real ranges is always a perfect score at
    /// every level.
    #[test]
    fn perfect_prediction_perfect_score(real in disjoint_ranges()) {
        for level in AdLevel::ALL {
            let s = evaluate_at_level(&real, &real, level);
            prop_assert!((s.precision - 1.0).abs() < 1e-12);
            prop_assert!((s.recall - 1.0).abs() < 1e-12);
        }
    }

    /// Adding a pure false-positive range can lower but never raise
    /// precision, and never changes recall.
    #[test]
    fn false_positive_only_hurts_precision(real in disjoint_ranges(), pred in disjoint_ranges()) {
        let p = RangeParams::classical();
        let base_precision = range_precision(&real, &pred, &p);
        let base_recall = range_recall(&real, &pred, &p);
        // A range far beyond every real/predicted range.
        let mut worse = pred.clone();
        worse.push(Range::new(10_000, 10_010));
        prop_assert!(range_precision(&real, &worse, &p) <= base_precision + 1e-12);
        prop_assert!((range_recall(&real, &worse, &p) - base_recall).abs() < 1e-12);
    }

    /// Flags -> ranges -> flags round-trips.
    #[test]
    fn flags_ranges_roundtrip(flags in proptest::collection::vec(any::<bool>(), 0..100)) {
        let ranges = ranges_from_flags(&flags, 0);
        let back = flags_from_ranges(&ranges, 0, flags.len());
        prop_assert_eq!(back, flags);
    }

    /// AUPRC is within [0, 1], and equals 1 when scores perfectly rank the
    /// labels.
    #[test]
    fn auprc_bounded_and_perfect(labels in proptest::collection::vec(any::<bool>(), 1..80)) {
        let perfect: Vec<f64> = labels.iter().map(|&l| if l { 1.0 } else { 0.0 }).collect();
        let a = auprc(&perfect, &labels);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&a));
        if labels.iter().any(|&l| l) {
            prop_assert!((a - 1.0).abs() < 1e-12, "perfect ranking must give AUPRC 1, got {a}");
        }
    }

    /// Consistency entropy is non-negative and zero only for identical
    /// singleton explanations.
    #[test]
    fn consistency_entropy_nonnegative(
        sets in proptest::collection::vec(
            proptest::collection::vec(0usize..10, 0..5), 0..6)
    ) {
        let h = consistency_entropy(&sets);
        prop_assert!(h >= 0.0);
        // Upper bound: log2 of the number of distinct features.
        let distinct: std::collections::BTreeSet<usize> =
            sets.iter().flatten().copied().collect();
        if !distinct.is_empty() {
            prop_assert!(h <= (distinct.len() as f64).log2() + 1e-9);
        }
    }
}
