//! End-to-end contract of the streaming replay driver: running
//! `run_replay` over the sparksim tiny dataset reproduces the batch
//! pipeline's per-record scores **bitwise** for the wrapped methods
//! (EWMA / kNN / LOF) — same partition, same transform, same split, same
//! fitted model, one recurrence with two drivers.
//!
//! The AE mapping (streaming tick `t` = batch window ending at `t`) and
//! the stream-native detectors are pinned at the crate level in
//! `crates/ad/tests/stream_equivalence.rs`; this test is the cross-crate
//! glue check that `exathlon_core::replay` builds the *same* models the
//! batch pipeline trains.

use exathlon_core::config::{AdMethod, ExperimentConfig, StreamMethod};
use exathlon_core::experiment::run_pipeline;
use exathlon_core::model::TrainingBudget;
use exathlon_core::replay::run_replay;
use exathlon_sparksim::dataset::DatasetBuilder;

const PAIRS: [(AdMethod, StreamMethod); 3] = [
    (AdMethod::Ewma, StreamMethod::Ewma),
    (AdMethod::Knn, StreamMethod::Knn),
    (AdMethod::Lof, StreamMethod::Lof),
];

#[test]
fn replay_reproduces_batch_pipeline_scores_bitwise() {
    let ds = DatasetBuilder::tiny(11).build();
    let config = ExperimentConfig { resample_interval: 2, ..ExperimentConfig::default() };
    let batch_methods: Vec<AdMethod> = PAIRS.iter().map(|&(b, _)| b).collect();
    let stream_methods: Vec<StreamMethod> = PAIRS.iter().map(|&(_, s)| s).collect();

    let batch = run_pipeline(&ds, &config, &batch_methods, TrainingBudget::Quick);
    let stream = run_replay(&ds, &config, &stream_methods, TrainingBudget::Quick);

    for (ad, sm) in PAIRS {
        let b = &batch.method_run(ad).scored;
        let s = stream.scored(sm);
        assert_eq!(b.len(), s.len(), "{ad:?}: trace count differs");
        for (bt, st) in b.iter().zip(s) {
            assert_eq!(bt.trace_id, st.trace_id, "{ad:?}: trace order differs");
            assert_eq!(bt.scores.len(), st.scores.len(), "{ad:?}: record count differs");
            for (i, (x, y)) in bt.scores.iter().zip(&st.scores).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{ad:?} trace {} record {i}: batch {x} vs stream {y}",
                    bt.trace_id
                );
            }
        }
    }
}

#[test]
fn stream_native_methods_score_every_test_record() {
    let ds = DatasetBuilder::tiny(13).build();
    let config = ExperimentConfig::default();
    let natives = [
        StreamMethod::Cusum,
        StreamMethod::PageHinkley,
        StreamMethod::Histogram,
        StreamMethod::SpectralResidual,
    ];
    let run = run_replay(&ds, &config, &natives, TrainingBudget::Quick);
    for (m, scored) in &run.methods {
        assert_eq!(scored.len(), run.tests.len());
        for (s, t) in scored.iter().zip(&run.tests) {
            assert_eq!(s.scores.len(), t.series.len(), "{m:?} dropped records");
            assert!(s.scores.iter().all(|v| v.is_finite()), "{m:?} non-finite scores");
        }
        // A detector that scores everything identically carries no
        // signal; the drift/rarity detectors must react to the injected
        // anomalies somewhere in the disturbed traces.
        let all: Vec<f64> = scored.iter().flat_map(|s| s.scores.iter().copied()).collect();
        let spread = all.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - all.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread > 0.0, "{m:?} produced constant scores");
    }
}
