//! End-to-end integration: dataset -> partition -> transform -> model ->
//! inference -> evaluation, across all workspace crates.

use exathlon::core::config::{AdMethod, ExperimentConfig, FeatureSpace};
use exathlon::core::experiment::run_pipeline;
use exathlon::core::model::TrainingBudget;
use exathlon::metrics::presets::AdLevel;
use exathlon::sparksim::dataset::DatasetBuilder;

fn tiny_config() -> ExperimentConfig {
    ExperimentConfig { resample_interval: 2, ..ExperimentConfig::default() }
}

#[test]
fn autoencoder_pipeline_detects_injected_anomalies() {
    let ds = DatasetBuilder::tiny(21).build();
    let run = run_pipeline(&ds, &tiny_config(), &[AdMethod::Ae], TrainingBudget::Quick);
    let sep = &run.method_run(AdMethod::Ae).separation;
    // The injected anomalies carry strong signal in the tiny dataset; the
    // AE must separate them clearly at the trace level.
    assert!(sep.trace.average > 0.5, "AE trace-level separation too weak: {}", sep.trace.average);
    // And detection with the best threshold must beat the trivial
    // flag-nothing detector at AD1.
    let (best, _) = run.detection_best_median(AdMethod::Ae, AdLevel::Existence);
    assert!(best.f1 > 0.5, "AE best AD1 F1 too low: {}", best.f1);
}

#[test]
fn ad_levels_are_monotone_for_every_method_and_rule() {
    let ds = DatasetBuilder::tiny(22).build();
    let run =
        run_pipeline(&ds, &tiny_config(), &[AdMethod::Knn, AdMethod::Mad], TrainingBudget::Quick);
    for method in [AdMethod::Knn, AdMethod::Mad] {
        let per_level: Vec<Vec<f64>> = AdLevel::ALL
            .iter()
            .map(|&l| run.detection(method, l).iter().map(|o| o.f1).collect())
            .collect();
        // Rule-by-rule monotonicity: the same threshold can never score
        // better at a stricter level.
        #[allow(clippy::needless_range_loop)] // rule_idx spans parallel vectors
        for rule_idx in 0..per_level[0].len() {
            for w in 0..AdLevel::ALL.len() - 1 {
                assert!(
                    per_level[w][rule_idx] >= per_level[w + 1][rule_idx] - 1e-9,
                    "{method:?} rule {rule_idx}: AD{} F1 {} < AD{} F1 {}",
                    w + 2,
                    per_level[w + 1][rule_idx],
                    w + 1,
                    per_level[w][rule_idx],
                );
            }
        }
    }
}

#[test]
fn pca_feature_space_runs_end_to_end() {
    let ds = DatasetBuilder::tiny(23).build();
    let config = ExperimentConfig {
        feature_space: FeatureSpace::Pca(8),
        resample_interval: 2,
        ..ExperimentConfig::default()
    };
    let run = run_pipeline(&ds, &config, &[AdMethod::Knn], TrainingBudget::Quick);
    assert_eq!(run.transform.output_dims(), 8);
    assert!(run.tests.iter().all(|t| t.series.dims() == 8));
    let sep = &run.method_run(AdMethod::Knn).separation;
    assert!(sep.global.average.is_finite());
}

#[test]
fn scores_align_with_labels_lengthwise() {
    let ds = DatasetBuilder::tiny(24).build();
    let run = run_pipeline(&ds, &tiny_config(), &[AdMethod::Mad], TrainingBudget::Quick);
    for t in &run.method_run(AdMethod::Mad).scored {
        assert_eq!(t.scores.len(), t.labels.len());
        assert!(t.scores.iter().all(|s| s.is_finite()));
        // Every typed range is inside the trace.
        for (_, r) in &t.typed_ranges {
            assert!((r.end as usize) <= t.labels.len());
        }
    }
}

#[test]
fn deterministic_given_config_seed() {
    let ds = DatasetBuilder::tiny(25).build();
    let run_once = || {
        let run = run_pipeline(&ds, &tiny_config(), &[AdMethod::Knn], TrainingBudget::Quick);
        run.method_run(AdMethod::Knn).scored[0].scores.clone()
    };
    assert_eq!(run_once(), run_once());
}
