//! Determinism suite for the parallel-execution layer: the pipeline must
//! produce **bitwise identical** results for any `EXATHLON_THREADS`,
//! because `par_map` fans out over contiguous, order-preserved chunks of
//! independent work (see `exathlon_linalg::par`).
//!
//! All thread-count variation happens inside single test functions run
//! sequentially — `EXATHLON_THREADS` is process-global state, so it must
//! never be mutated from concurrently running tests.

use exathlon_core::config::{AdMethod, ExperimentConfig};
use exathlon_core::evaluate::{evaluate_detection, DetectionOutcome, ScoredTest};
use exathlon_core::experiment::{run_pipeline, PipelineRun};
use exathlon_core::model::TrainingBudget;
use exathlon_core::par::THREADS_ENV;
use exathlon_sparksim::dataset::DatasetBuilder;
use exathlon_tsmetrics::presets::AdLevel;

/// The thread counts every invariant is checked across: the sequential
/// pin, a divisor-unfriendly small count, and an oversubscribed one.
const THREAD_COUNTS: [&str; 3] = ["1", "2", "8"];

static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn with_threads<R>(threads: &str, body: impl FnOnce() -> R) -> R {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    std::env::set_var(THREADS_ENV, threads);
    let result = body();
    std::env::remove_var(THREADS_ENV);
    result
}

/// The methods exercising every parallel path: per-method fan-out in
/// `run_pipeline`, per-trace fan-out in `score_tests`, and the
/// record-parallel detectors (kNN / LOF / iForest) inside them.
const METHODS: [AdMethod; 4] = [AdMethod::Knn, AdMethod::Lof, AdMethod::IForest, AdMethod::Mad];

fn pipeline(threads: &str) -> PipelineRun {
    with_threads(threads, || {
        let ds = DatasetBuilder::tiny(11).build();
        let config = ExperimentConfig { resample_interval: 2, ..ExperimentConfig::default() };
        run_pipeline(&ds, &config, &METHODS, TrainingBudget::Quick)
    })
}

/// `f64` equality up to the bit pattern (distinguishes 0.0 from -0.0 and
/// never equates NaN payloads — stricter than `==`).
fn bits(x: f64) -> u64 {
    x.to_bits()
}

fn assert_scored_identical(reference: &[ScoredTest], other: &[ScoredTest], context: &str) {
    assert_eq!(reference.len(), other.len(), "{context}: test count differs");
    for (a, b) in reference.iter().zip(other) {
        assert_eq!(a.trace_id, b.trace_id, "{context}: trace order differs");
        assert_eq!(a.scores.len(), b.scores.len(), "{context}: score length differs");
        for (i, (x, y)) in a.scores.iter().zip(&b.scores).enumerate() {
            assert_eq!(
                bits(*x),
                bits(*y),
                "{context}: trace {} score {i} differs bitwise: {x} vs {y}",
                a.trace_id
            );
        }
        assert_eq!(a.labels, b.labels, "{context}: labels differ");
    }
}

fn assert_outcomes_identical(
    reference: &[DetectionOutcome],
    other: &[DetectionOutcome],
    context: &str,
) {
    assert_eq!(reference.len(), other.len(), "{context}: rule count differs");
    for (a, b) in reference.iter().zip(other) {
        assert_eq!(a.rule, b.rule, "{context}: rule order differs");
        assert_eq!(bits(a.threshold), bits(b.threshold), "{context}: {} threshold", a.rule);
        assert_eq!(bits(a.f1), bits(b.f1), "{context}: {} f1", a.rule);
        assert_eq!(bits(a.precision), bits(b.precision), "{context}: {} precision", a.rule);
        assert_eq!(bits(a.recall), bits(b.recall), "{context}: {} recall", a.rule);
        assert_eq!(a.per_type_recall, b.per_type_recall, "{context}: {} per-type", a.rule);
    }
}

/// The full pipeline — training, trace scoring, record scoring,
/// separation AUPRC — is bitwise identical across thread counts.
#[test]
fn pipeline_bitwise_identical_across_thread_counts() {
    let reference = pipeline(THREAD_COUNTS[0]);
    for threads in &THREAD_COUNTS[1..] {
        let other = pipeline(threads);
        for (method, ref_run) in &reference.methods {
            let other_run = other.method_run(*method);
            let context = format!("{method:?} @ {threads} threads");
            assert_scored_identical(&ref_run.scored, &other_run.scored, &context);
            assert_eq!(
                ref_run.separation, other_run.separation,
                "{context}: separation scores differ"
            );
        }
    }
}

/// The 24-rule thresholding grid — the fourth parallel path — is bitwise
/// identical across thread counts, at every AD level.
#[test]
fn detection_grid_bitwise_identical_across_thread_counts() {
    let reference = pipeline(THREAD_COUNTS[0]);
    let ref_run = reference.method_run(AdMethod::Knn);
    let levels = AdLevel::ALL;
    let baseline: Vec<Vec<DetectionOutcome>> = with_threads(THREAD_COUNTS[0], || {
        levels.iter().map(|&l| evaluate_detection(&ref_run.model, &ref_run.scored, l)).collect()
    });
    for threads in &THREAD_COUNTS[1..] {
        let other: Vec<Vec<DetectionOutcome>> = with_threads(threads, || {
            levels.iter().map(|&l| evaluate_detection(&ref_run.model, &ref_run.scored, l)).collect()
        });
        for ((level, a), b) in levels.iter().zip(&baseline).zip(&other) {
            assert_outcomes_identical(a, b, &format!("{level:?} @ {threads} threads"));
        }
    }
}

/// Dataset builds — trace simulation now rides the shared worker pool —
/// are bitwise identical across thread counts AND across the
/// parallel/sequential toggle: the par port of `parallel_simulate` must
/// not change a single bit of any trace or ground-truth entry.
#[test]
fn dataset_build_bitwise_identical_across_thread_counts() {
    let reference = with_threads(THREAD_COUNTS[0], || DatasetBuilder::tiny(7).build());
    let mut variants: Vec<(String, exathlon_sparksim::dataset::Dataset)> = Vec::new();
    for threads in &THREAD_COUNTS[1..] {
        variants.push((
            format!("parallel @ {threads} threads"),
            with_threads(threads, || DatasetBuilder::tiny(7).build()),
        ));
    }
    variants.push((
        "sequential path".to_string(),
        with_threads("4", || DatasetBuilder::tiny(7).with_parallel(false).build()),
    ));
    for (context, other) in &variants {
        assert_eq!(
            reference.undisturbed.len(),
            other.undisturbed.len(),
            "{context}: undisturbed count"
        );
        assert_eq!(reference.disturbed.len(), other.disturbed.len(), "{context}: disturbed count");
        for (a, b) in reference.undisturbed.iter().zip(&other.undisturbed) {
            assert_eq!(a.trace_id, b.trace_id, "{context}: undisturbed trace order");
            assert!(a.base.same_data(&b.base), "{context}: trace {} data differs", a.trace_id);
        }
        for (a, b) in reference.disturbed.iter().zip(&other.disturbed) {
            assert_eq!(a.trace_id, b.trace_id, "{context}: disturbed trace order");
            assert!(a.base.same_data(&b.base), "{context}: trace {} data differs", a.trace_id);
        }
        assert_eq!(reference.ground_truth, other.ground_truth, "{context}: ground truth");
    }
}

/// Scoring the same fitted detector from many threads concurrently (the
/// shape `run_pipeline` creates: outer method fan-out calling inner
/// record-parallel scoring) equals the isolated result — the worker
/// budget degrades gracefully, never changing values.
#[test]
fn nested_parallel_scoring_matches_isolated() {
    let reference = pipeline("1");
    let (_, knn_run) = &reference.methods[0];
    let isolated: Vec<Vec<u64>> =
        knn_run.scored.iter().map(|t| t.scores.iter().map(|s| bits(*s)).collect()).collect();
    let nested = pipeline("8");
    let (_, knn_nested) = &nested.methods[0];
    let nested_bits: Vec<Vec<u64>> =
        knn_nested.scored.iter().map(|t| t.scores.iter().map(|s| bits(*s)).collect()).collect();
    assert_eq!(isolated, nested_bits, "nested parallel scoring changed kNN scores");
}
