//! End-to-end numerics contract of the zero-copy window data plane:
//! running the full pipeline on view-based windows, gathered batches,
//! and the fused transform chain produces *bitwise identical* results
//! to the materialized escape hatch (`EXATHLON_MATERIALIZED_WINDOWS=1`),
//! which re-enacts the pre-dataplane copy behaviour.
//!
//! Unlike the kernel equivalence test (which tolerates the Gram
//! expansion's reassociation), the data plane only moves bytes: gathered
//! batches are byte-identical to the old row materialization, so every
//! score, threshold, and metric must match to the bit.
//!
//! The toggle is process-global, so the whole comparison lives in one
//! test binary and the variable is restored before the test returns.

use exathlon_core::config::{AdMethod, ExperimentConfig};
use exathlon_core::evaluate::evaluate_detection;
use exathlon_core::experiment::{run_pipeline, PipelineRun};
use exathlon_core::model::TrainingBudget;
use exathlon_sparksim::dataset::DatasetBuilder;
use exathlon_tsdata::window::MATERIALIZED_WINDOWS_ENV;
use exathlon_tsmetrics::presets::AdLevel;

/// The window-batch consumers (AE fit/score batches, LSTM forecast
/// pairs) plus the record-view kNN path as a reference-set consumer.
const METHODS: [AdMethod; 3] = [AdMethod::Ae, AdMethod::Lstm, AdMethod::Knn];

fn pipeline() -> PipelineRun {
    let ds = DatasetBuilder::tiny(11).build();
    let config = ExperimentConfig { resample_interval: 2, ..ExperimentConfig::default() };
    run_pipeline(&ds, &config, &METHODS, TrainingBudget::Quick)
}

#[test]
fn pipeline_bitwise_identical_with_materialized_windows() {
    // Zero-copy (default) run first, then the materialized re-enactment.
    std::env::remove_var(MATERIALIZED_WINDOWS_ENV);
    let zero_copy = pipeline();
    std::env::set_var(MATERIALIZED_WINDOWS_ENV, "1");
    let materialized = pipeline();
    std::env::remove_var(MATERIALIZED_WINDOWS_ENV);

    for (method, zc_run) in &zero_copy.methods {
        let mat_run = materialized.method_run(*method);

        // Per-record scores: bitwise identical, not merely close.
        assert_eq!(zc_run.scored.len(), mat_run.scored.len(), "{method:?}: test count");
        for (a, b) in zc_run.scored.iter().zip(&mat_run.scored) {
            assert_eq!(a.trace_id, b.trace_id, "{method:?}: trace order");
            assert_eq!(a.labels, b.labels, "{method:?}: labels");
            assert_eq!(a.scores.len(), b.scores.len(), "{method:?}: score count");
            for (i, (x, y)) in a.scores.iter().zip(&b.scores).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{method:?} trace {} score {i}: zero-copy {x} vs materialized {y}",
                    a.trace_id
                );
            }
        }

        // Detection metrics: identical at every AD level and rule.
        for level in AdLevel::ALL {
            let from_zc = evaluate_detection(&zc_run.model, &zc_run.scored, level);
            let from_mat = evaluate_detection(&mat_run.model, &mat_run.scored, level);
            assert_eq!(from_zc.len(), from_mat.len(), "{method:?} {level:?}: rule count");
            for (a, b) in from_zc.iter().zip(&from_mat) {
                assert_eq!(a.rule, b.rule, "{method:?} {level:?}: rule order");
                let ctx = format!("{method:?} {level:?} {}", a.rule);
                assert_eq!(a.f1.to_bits(), b.f1.to_bits(), "{ctx}: f1 {} vs {}", a.f1, b.f1);
                assert_eq!(
                    a.precision.to_bits(),
                    b.precision.to_bits(),
                    "{ctx}: precision {} vs {}",
                    a.precision,
                    b.precision
                );
                assert_eq!(
                    a.recall.to_bits(),
                    b.recall.to_bits(),
                    "{ctx}: recall {} vs {}",
                    a.recall,
                    b.recall
                );
                assert_eq!(a.per_type_recall, b.per_type_recall, "{ctx}: per-type recall");
            }
        }

        // Separation AUPRC rides the same scores, so it is bitwise too.
        for (scope, a, b) in [
            ("trace", &zc_run.separation.trace, &mat_run.separation.trace),
            ("app", &zc_run.separation.app, &mat_run.separation.app),
            ("global", &zc_run.separation.global, &mat_run.separation.global),
        ] {
            assert_eq!(
                a.average.to_bits(),
                b.average.to_bits(),
                "{method:?} {scope} separation: zero-copy {} vs materialized {}",
                a.average,
                b.average
            );
        }
    }
}
