//! End-to-end numerics contract of the dense kernel layer: running the
//! full pipeline with the batched GEMM/Gram-trick kernels produces the
//! same detection results as running it with the retained naive
//! reference paths (`EXATHLON_NAIVE_KERNELS=1`).
//!
//! Per-record scores are compared at the kernel layer's 1e-9 relative
//! tolerance (the Gram expansion reassociates the distance sums);
//! thresholds, predictions, and detection metrics must come out
//! identical.
//!
//! The toggle is process-global, so the whole comparison lives in one
//! test binary and the variable is restored before the test returns.

use exathlon_core::config::{AdMethod, ExperimentConfig};
use exathlon_core::evaluate::evaluate_detection;
use exathlon_core::experiment::{run_pipeline, PipelineRun};
use exathlon_core::model::TrainingBudget;
use exathlon_linalg::kernel::NAIVE_KERNELS_ENV;
use exathlon_sparksim::dataset::DatasetBuilder;
use exathlon_tsmetrics::presets::AdLevel;

/// The distance-kernel consumers plus one kernel-free control method.
const METHODS: [AdMethod; 3] = [AdMethod::Knn, AdMethod::Lof, AdMethod::Mad];

fn pipeline() -> PipelineRun {
    let ds = DatasetBuilder::tiny(11).build();
    let config = ExperimentConfig { resample_interval: 2, ..ExperimentConfig::default() };
    run_pipeline(&ds, &config, &METHODS, TrainingBudget::Quick)
}

#[test]
fn pipeline_metrics_identical_with_naive_kernels() {
    // Batched (default) run first, then the naive reference run.
    std::env::remove_var(NAIVE_KERNELS_ENV);
    let batched = pipeline();
    std::env::set_var(NAIVE_KERNELS_ENV, "1");
    let naive = pipeline();
    std::env::remove_var(NAIVE_KERNELS_ENV);

    for (method, batched_run) in &batched.methods {
        let naive_run = naive.method_run(*method);

        // Per-record scores: within the kernel numerics contract.
        assert_eq!(batched_run.scored.len(), naive_run.scored.len(), "{method:?}: test count");
        for (a, b) in batched_run.scored.iter().zip(&naive_run.scored) {
            assert_eq!(a.trace_id, b.trace_id, "{method:?}: trace order");
            assert_eq!(a.labels, b.labels, "{method:?}: labels");
            assert_eq!(a.scores.len(), b.scores.len(), "{method:?}: score count");
            for (i, (x, y)) in a.scores.iter().zip(&b.scores).enumerate() {
                let tol = 1e-9 * y.abs().max(1.0);
                assert!(
                    (x - y).abs() <= tol,
                    "{method:?} trace {} score {i}: batched {x} vs naive {y}",
                    a.trace_id
                );
            }
        }

        // Detection metrics: identical at every AD level and rule.
        for level in AdLevel::ALL {
            let from_batched = evaluate_detection(&batched_run.model, &batched_run.scored, level);
            let from_naive = evaluate_detection(&naive_run.model, &naive_run.scored, level);
            assert_eq!(from_batched.len(), from_naive.len(), "{method:?} {level:?}: rule count");
            for (a, b) in from_batched.iter().zip(&from_naive) {
                assert_eq!(a.rule, b.rule, "{method:?} {level:?}: rule order");
                let ctx = format!("{method:?} {level:?} {}", a.rule);
                assert_eq!(a.f1.to_bits(), b.f1.to_bits(), "{ctx}: f1 {} vs {}", a.f1, b.f1);
                assert_eq!(
                    a.precision.to_bits(),
                    b.precision.to_bits(),
                    "{ctx}: precision {} vs {}",
                    a.precision,
                    b.precision
                );
                assert_eq!(
                    a.recall.to_bits(),
                    b.recall.to_bits(),
                    "{ctx}: recall {} vs {}",
                    a.recall,
                    b.recall
                );
                assert_eq!(a.per_type_recall, b.per_type_recall, "{ctx}: per-type recall");
            }
        }

        // Separation AUPRC rides the same scores (ranking-based, so a
        // sub-1e-9 score wobble must not move it beyond tolerance).
        for (scope, a, b) in [
            ("trace", &batched_run.separation.trace, &naive_run.separation.trace),
            ("app", &batched_run.separation.app, &naive_run.separation.app),
            ("global", &batched_run.separation.global, &naive_run.separation.global),
        ] {
            assert!(
                (a.average - b.average).abs() <= 1e-9 * b.average.abs().max(1.0),
                "{method:?} {scope} separation: batched {} vs naive {}",
                a.average,
                b.average
            );
        }
    }
}
