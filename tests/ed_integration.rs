//! ED integration: the explainers must find the *right* features for the
//! anomalies the simulator injects, end to end through the pipeline.

use exathlon::core::config::ExperimentConfig;
use exathlon::core::edrun::{collect_cases, evaluate_ed, EdMethodKind, EdRunner};
use exathlon::core::partition::partition;
use exathlon::core::transform::FittedTransform;
use exathlon::core::LearningSetting;
use exathlon::ed::ExstreamExplainer;
use exathlon::sparksim::dataset::DatasetBuilder;
use exathlon::sparksim::metrics::custom_feature_names;
use exathlon::sparksim::AnomalyType;

fn cases() -> (Vec<exathlon::core::edrun::EdCase>, ExperimentConfig) {
    let ds = DatasetBuilder::tiny(31).build();
    let config = ExperimentConfig::default();
    let parts = partition(&ds, LearningSetting::ls4(), config.peek_fraction);
    let (transform, _) = FittedTransform::fit(&parts.train, &config);
    let tests: Vec<_> = parts.test.iter().map(|s| transform.apply_test(s)).collect();
    (collect_cases(&tests, 10), config)
}

#[test]
fn exstream_explains_bursty_input_with_rate_features() {
    let (cases, _) = cases();
    let case = cases
        .iter()
        .find(|c| c.atype == AnomalyType::BurstyInput)
        .expect("tiny dataset has a T1 case");
    let e = ExstreamExplainer::default().explain(&case.anomaly, &case.reference);
    let names = custom_feature_names();
    let used: Vec<&str> = e.features().iter().map(|&j| names[j].as_str()).collect();
    // A bursty-input anomaly must be explained by input-rate or delay or
    // memory features — the signals the paper's Figure 7(b) shows.
    let plausible = used.iter().any(|n| {
        n.contains("Received")
            || n.contains("Delay")
            || n.contains("delay")
            || n.contains("mem")
            || n.contains("heap")
    });
    assert!(plausible, "implausible T1 explanation features: {used:?}");
}

#[test]
fn exstream_explains_stalled_input_with_throughput_features() {
    let (cases, _) = cases();
    let case = cases
        .iter()
        .find(|c| c.atype == AnomalyType::StalledInput)
        .expect("tiny dataset has a T3 case");
    let e = ExstreamExplainer::default().explain(&case.anomaly, &case.reference);
    let names = custom_feature_names();
    let used: Vec<&str> = e.features().iter().map(|&j| names[j].as_str()).collect();
    let plausible = used.iter().any(|n| {
        n.contains("Received")
            || n.contains("Processed")
            || n.contains("Batch")
            || n.contains("Delay")
            || n.contains("cpuTime")
            || n.contains("runTime")
    });
    assert!(plausible, "implausible T3 explanation features: {used:?}");
}

#[test]
fn model_free_methods_full_evaluation_is_sane() {
    let (cases, config) = cases();
    assert!(!cases.is_empty());
    for method in [EdMethodKind::Exstream, EdMethodKind::MacroBase] {
        let runner = EdRunner { method, ae_model: None, seed: config.seed };
        let eval = evaluate_ed(&runner, &cases);
        assert_eq!(eval.average.n_cases, cases.len());
        assert!(eval.average.conciseness >= 1.0, "{method:?} produced empty explanations");
        assert!(eval.average.stability >= 0.0);
        assert!(eval.average.concordance >= eval.average.stability - 1.0);
        let p = eval.average.precision.expect("logical methods are predictive");
        assert!(p > 0.3, "{method:?} ED1 precision too low: {p}");
        assert!(eval.average.time_secs < 1.0, "{method:?} too slow per explanation");
    }
}

#[test]
fn explanations_generalize_within_the_anomaly() {
    // ED1 accuracy contract: an explanation built from 80% of an anomaly
    // predicts the held-out 20% much better than chance.
    let (cases, config) = cases();
    let runner = EdRunner { method: EdMethodKind::Exstream, ae_model: None, seed: config.seed };
    let eval = evaluate_ed(&runner, &cases);
    let recall = eval.average.recall.expect("predictive");
    assert!(recall > 0.4, "held-out recall too low: {recall}");
}
