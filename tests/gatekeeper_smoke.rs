//! Gatekeeper smoke test: the serving layer end to end over real
//! pipeline artifacts. Fit detectors exactly as the replay driver does,
//! upload them as checkpoints to a gatekeeper on an ephemeral port,
//! stream a transformed sparksim test trace through `/v1/ingest`, and
//! assert every served score is **bitwise** equal to a locally driven
//! twin — then download the checkpoint and confirm it equals the twin's
//! snapshot byte for byte. CI runs this as part of tier-1.

use exathlon_core::checkpoint::ServingProfile;
use exathlon_core::config::{ExperimentConfig, StreamMethod};
use exathlon_core::experiment::prepare;
use exathlon_core::model::TrainingBudget;
use exathlon_core::replay::{build_servable, stream_seed};
use exathlon_core::serve::{Gatekeeper, GatekeeperConfig};
use exathlon_sparksim::dataset::DatasetBuilder;
use serde_json::Value;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

/// Minimal HTTP/1.1 client: one keep-alive connection, sequential
/// request/response.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect to gatekeeper");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Self { stream, reader }
    }

    fn request(&mut self, method: &str, path: &str, body: &[u8]) -> (u16, Vec<u8>) {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: smoke\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes()).expect("write head");
        self.stream.write_all(body).expect("write body");
        let mut status_line = String::new();
        self.reader.read_line(&mut status_line).expect("read status line");
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .unwrap_or_else(|| panic!("bad status line {status_line:?}"))
            .parse()
            .expect("numeric status");
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            self.reader.read_line(&mut header).expect("read header");
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().expect("numeric content-length");
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).expect("read body");
        (status, body)
    }
}

fn json_record(record: &[f64]) -> String {
    let mut out = String::from("{\"record\":[");
    for (i, x) in record.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if x.is_finite() {
            out.push_str(&format!("{x}"));
        } else {
            out.push_str("null");
        }
    }
    out.push_str("]}");
    out
}

fn score_of(body: &[u8]) -> f64 {
    let v =
        serde_json::parse_value(std::str::from_utf8(body).expect("UTF-8 body")).expect("JSON body");
    match v.get("score").expect("score field") {
        Value::Int(i) => *i as f64,
        Value::Null => f64::NAN,
        Value::Float(f) => *f,
        other => panic!("score was {other:?}"),
    }
}

#[test]
fn served_scores_match_local_twin_bitwise() {
    // The replay driver's own data path: simulate, partition, transform.
    let ds = DatasetBuilder::tiny(11).build();
    let config = ExperimentConfig::default();
    let (_transform, train, tests) = prepare(&ds, &config);
    let test = &tests.iter().max_by_key(|t| t.series.len()).expect("no test traces").series;
    let n = test.len().min(60);

    let gk =
        Gatekeeper::bind("127.0.0.1:0", GatekeeperConfig::default()).expect("bind ephemeral port");
    let addr = gk.local_addr();
    let mut client = Client::connect(addr);

    for (entity, method) in [("exec-ewma", StreamMethod::Ewma), ("exec-knn", StreamMethod::Knn)] {
        let detector = build_servable(
            method,
            &train,
            config.threshold_holdout,
            TrainingBudget::Quick,
            stream_seed(config.seed, method),
        );
        let mut local = ServingProfile::new(detector, 1.0);
        let path = format!("/v1/profile/spark-app/{entity}");
        let (status, _) = client.request("PUT", &path, &local.to_bytes());
        assert_eq!(status, 200, "{method:?}: profile upload failed");

        // Stream the trace; every served score must equal the local twin.
        for i in 0..n {
            let record = test.record(i);
            let (want, _) = local.ingest(record);
            let body = json_record(record);
            let (status, resp) =
                client.request("POST", &format!("/v1/ingest/spark-app/{entity}"), body.as_bytes());
            assert_eq!(status, 200, "{method:?}: ingest {i} failed");
            let got = score_of(&resp);
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "{method:?}: served score diverged at record {i}: {got} vs {want}"
            );
        }

        // The downloaded checkpoint is the advanced state, byte for byte.
        let (status, image) =
            client.request("GET", &format!("/v1/checkpoint/spark-app/{entity}"), b"");
        assert_eq!(status, 200, "{method:?}: checkpoint download failed");
        assert_eq!(image, local.to_bytes(), "{method:?}: checkpoint image diverged");

        // And it restores to a profile that keeps agreeing.
        let mut restored = ServingProfile::from_bytes(&image).expect("restore checkpoint");
        for i in n..test.len().min(n + 10) {
            let (a, _) = local.ingest(test.record(i));
            let (b, _) = restored.ingest(test.record(i));
            assert_eq!(a.to_bits(), b.to_bits(), "{method:?}: restored twin diverged at {i}");
        }
    }

    let (status, body) = client.request("GET", "/v1/stats", b"");
    assert_eq!(status, 200);
    let v = serde_json::parse_value(std::str::from_utf8(&body).unwrap()).unwrap();
    assert_eq!(v.get("insertions"), Some(&Value::Int(2)), "stats: {v:?}");
    assert_eq!(v.get("resident_profiles"), Some(&Value::Int(2)));

    gk.shutdown();
}

/// Concurrent writers to ONE entity must serialize: with N keep-alive
/// clients hammering the same `(app, entity)`, the served scores must be
/// bitwise-explainable as SOME sequential interleaving of the clients'
/// request sequences (each client's own order preserved — HTTP gives it
/// no less), and the final checkpoint must be the end state of that
/// same interleaving. This pins the shard-lock serialization contract:
/// no lost updates, no torn detector state, no score computed against a
/// half-applied neighbor.
#[test]
fn concurrent_same_entity_ingest_serializes() {
    use exathlon_ad::stream::StreamingEwma;

    const CLIENTS: usize = 3;
    const PER_CLIENT: usize = 30;

    let profile = ServingProfile::new(StreamingEwma::new(0.3, vec![1.0, 2.0]).into(), 0.75);
    let gk =
        Gatekeeper::bind("127.0.0.1:0", GatekeeperConfig::default()).expect("bind ephemeral port");
    let addr = gk.local_addr();
    let mut setup = Client::connect(addr);
    let (status, _) =
        setup.request("PUT", "/v1/profile/spark-app/shared-exec", &profile.to_bytes());
    assert_eq!(status, 200, "profile upload failed");

    // Each client streams its own distinct record sequence and records
    // (record, served score bits) in its own request order.
    let streams: Vec<Vec<(Vec<f64>, u64)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr);
                    (0..PER_CLIENT)
                        .map(|i| {
                            let record = vec![c as f64 + 1.0, i as f64 * 0.25 - c as f64];
                            let body = json_record(&record);
                            let (status, resp) = client.request(
                                "POST",
                                "/v1/ingest/spark-app/shared-exec",
                                body.as_bytes(),
                            );
                            assert_eq!(status, 200, "client {c} ingest {i} failed");
                            (record, score_of(&resp).to_bits())
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });

    let (status, image) = setup.request("GET", "/v1/checkpoint/spark-app/shared-exec", b"");
    assert_eq!(status, 200, "checkpoint download failed");

    // Backtracking search over interleavings: at each step, any client
    // whose next served score matches a twin replay of its next record
    // may go next. Wrong branches die fast because the EWMA state (and
    // hence the score) shifts with every ingest.
    fn search(
        twin: &ServingProfile,
        streams: &[Vec<(Vec<f64>, u64)>],
        pos: &mut [usize],
        image: &[u8],
    ) -> bool {
        if pos.iter().enumerate().all(|(c, &p)| p == streams[c].len()) {
            return twin.to_bytes() == image;
        }
        for c in 0..streams.len() {
            if pos[c] < streams[c].len() {
                let (record, want) = &streams[c][pos[c]];
                let mut t = twin.clone();
                let (score, _) = t.ingest(record);
                if score.to_bits() == *want {
                    pos[c] += 1;
                    if search(&t, streams, pos, image) {
                        return true;
                    }
                    pos[c] -= 1;
                }
            }
        }
        false
    }
    let mut pos = vec![0usize; CLIENTS];
    assert!(
        search(&profile, &streams, &mut pos, &image),
        "no sequential interleaving of the clients' requests explains the served \
         score stream and final checkpoint"
    );
    gk.shutdown();
}
