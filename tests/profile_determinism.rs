//! Observability determinism: `EXATHLON_PROFILE=1` must never change a
//! single bit of pipeline output — guards only read clocks — and the
//! emitted report must parse as JSON and cover every named pipeline stage
//! (simulate / partition / transform / train / score / threshold /
//! evaluate / ed).
//!
//! Everything lives in one test function: `EXATHLON_PROFILE` is
//! process-global state, so the unprofiled and profiled runs must be
//! strictly sequential.

use exathlon::core::config::{AdMethod, ExperimentConfig};
use exathlon::core::edrun::{collect_cases, evaluate_ed, EdMethodKind, EdRunner};
use exathlon::core::experiment::run_pipeline;
use exathlon::core::model::TrainingBudget;
use exathlon::core::obs;
use exathlon::metrics::presets::AdLevel;
use exathlon::sparksim::dataset::DatasetBuilder;

/// Every stage the instrumented pipeline must report.
const STAGES: [&str; 8] =
    ["simulate", "partition", "transform", "train", "score", "threshold", "evaluate", "ed"];

/// Run dataset build → pipeline → threshold grid → ED and fold every
/// deterministic numeric output into one bit-level digest. Wall-clock
/// outputs (ED `time_secs`) are deliberately excluded.
fn digest() -> Vec<u64> {
    let ds = DatasetBuilder::tiny(11).build();
    let config = ExperimentConfig { resample_interval: 2, ..ExperimentConfig::default() };
    let run = run_pipeline(&ds, &config, &[AdMethod::Knn, AdMethod::Mad], TrainingBudget::Quick);

    let mut bits = Vec::new();
    for (_, mr) in &run.methods {
        for t in &mr.scored {
            bits.extend(t.scores.iter().map(|s| s.to_bits()));
        }
        bits.push(mr.separation.trace.average.to_bits());
        bits.push(mr.separation.app.average.to_bits());
        bits.push(mr.separation.global.average.to_bits());
    }
    for o in run.detection(AdMethod::Knn, AdLevel::Range) {
        bits.push(o.threshold.to_bits());
        bits.push(o.f1.to_bits());
        bits.push(o.precision.to_bits());
        bits.push(o.recall.to_bits());
    }
    let cases = collect_cases(&run.tests, 10);
    assert!(!cases.is_empty(), "tiny dataset must yield ED cases");
    let runner = EdRunner { method: EdMethodKind::Exstream, ae_model: None, seed: config.seed };
    let ed = evaluate_ed(&runner, &cases);
    bits.push(ed.average.conciseness.to_bits());
    bits.push(ed.average.stability.to_bits());
    bits.push(ed.average.concordance.to_bits());
    bits.push(ed.average.n_cases as u64);
    bits
}

#[test]
fn profiled_run_is_bitwise_identical_and_report_covers_every_stage() {
    // Unprofiled baseline — the registry must stay empty.
    std::env::remove_var(obs::PROFILE_ENV);
    obs::refresh();
    obs::reset();
    let baseline = digest();
    let rep = obs::report();
    assert!(rep.stages.is_empty(), "disabled profiling recorded stages: {:?}", rep.stages);
    assert!(rep.spans.is_empty(), "disabled profiling recorded spans");

    // Profiled run: bitwise-identical output.
    std::env::set_var(obs::PROFILE_ENV, "1");
    obs::refresh();
    obs::reset();
    let profiled = digest();
    assert_eq!(baseline, profiled, "EXATHLON_PROFILE=1 changed pipeline output");

    // The report covers every named stage, with sane aggregates.
    let rep = obs::report();
    for stage in STAGES {
        let s = rep
            .stages
            .iter()
            .find(|s| s.name == stage)
            .unwrap_or_else(|| panic!("stage {stage:?} missing from report"));
        assert!(s.entries > 0, "stage {stage:?} has no entries");
        assert!(s.wall_ns > 0, "stage {stage:?} has no wall-clock");
    }
    assert!(
        rep.spans.iter().any(|s| s.stage == "simulate" && s.name == "trace"),
        "per-trace simulate spans missing"
    );
    assert!(
        rep.spans.iter().any(|s| s.stage == "train" && s.name == "kNN"),
        "per-method train spans missing"
    );
    assert!(
        rep.spans.iter().any(|s| s.stage == "threshold" && s.name == "rule"),
        "threshold-rule spans missing"
    );
    assert!(
        rep.spans.iter().any(|s| s.stage == "ed" && s.name == "EXstream.explain"),
        "ED explain spans missing"
    );
    assert!(
        rep.counters.iter().any(|(k, v)| k == "par.calls" && *v > 0),
        "parallel-layer counters missing: {:?}",
        rep.counters
    );

    // The JSON document parses and names every stage; the table renders
    // every stage row.
    let value = serde_json::parse_value(&rep.to_json()).expect("report JSON must parse");
    let stages = value.get("stages").and_then(|v| v.as_array()).expect("stages array");
    for stage in STAGES {
        assert!(
            stages.iter().any(|s| s.get("name").and_then(|n| n.as_str()) == Some(stage)),
            "stage {stage:?} missing from JSON report"
        );
    }
    let table = rep.table(10);
    for stage in STAGES {
        assert!(table.contains(stage), "stage {stage:?} missing from table:\n{table}");
    }

    // The emitted file exists, parses, and lands under the report dir.
    let path = obs::emit_report().expect("emit_report must write under EXATHLON_PROFILE=1");
    let text = std::fs::read_to_string(&path).expect("report file readable");
    serde_json::parse_value(&text).expect("emitted report file must parse");
    assert!(path.ends_with(obs::REPORT_FILE));

    std::env::remove_var(obs::PROFILE_ENV);
    obs::refresh();
    obs::reset();
}
