//! Integration checks on the generated dataset: ground-truth hygiene and
//! the documented Table 1(b) composition, across seeds.

use exathlon::sparksim::dataset::DatasetBuilder;
use exathlon::sparksim::AnomalyType;

#[test]
fn ground_truth_is_well_formed_across_seeds() {
    for seed in [1u64, 2, 3] {
        let ds = DatasetBuilder::tiny(seed).build();
        for e in &ds.ground_truth {
            assert!(e.root_cause_start < e.root_cause_end, "empty RCI: {e:?}");
            if let Some((s, end)) = e.extended_effect {
                assert_eq!(s, e.root_cause_end, "EEI must start right after the RCI: {e:?}");
                assert!(end > s, "empty EEI: {e:?}");
            }
            let trace = ds
                .disturbed
                .iter()
                .find(|t| t.trace_id == e.trace_id)
                .expect("ground truth references an existing trace");
            let (_, a_end) = e.anomaly_interval();
            assert!(
                a_end <= trace.len() as u64,
                "anomaly interval exceeds the trace: {e:?} vs len {}",
                trace.len()
            );
        }
    }
}

#[test]
fn anomaly_intervals_within_a_trace_do_not_overlap() {
    let ds = DatasetBuilder::standard(5).with_durations(400, 1000).build();
    for trace in &ds.disturbed {
        let mut intervals: Vec<(u64, u64)> =
            ds.ground_truth_for(trace.trace_id).iter().map(|e| e.anomaly_interval()).collect();
        intervals.sort();
        for w in intervals.windows(2) {
            assert!(
                w[0].1 <= w[1].0,
                "overlapping ground-truth intervals in trace {}: {:?}",
                trace.trace_id,
                w
            );
        }
    }
}

#[test]
fn standard_composition_is_stable_across_seeds() {
    for seed in [11u64, 12] {
        let ds = DatasetBuilder::standard(seed).with_durations(400, 1000).build();
        assert_eq!(ds.undisturbed.len(), 59);
        assert_eq!(ds.disturbed.len(), 34);
        assert_eq!(ds.instances_per_type().iter().sum::<usize>(), 97);
    }
}

#[test]
fn every_anomaly_type_present_in_standard_dataset() {
    let ds = DatasetBuilder::standard(6).with_durations(400, 1000).build();
    let per_type = ds.instances_per_type();
    for (i, t) in AnomalyType::ALL.iter().enumerate() {
        assert!(per_type[i] > 0, "no instances of {t:?}");
    }
}

#[test]
fn undisturbed_traces_have_no_ground_truth() {
    let ds = DatasetBuilder::tiny(7).build();
    for t in &ds.undisturbed {
        assert!(ds.ground_truth_for(t.trace_id).is_empty());
        assert!(t.is_undisturbed());
        assert!(t.crashed_at.is_none(), "undisturbed trace crashed");
    }
}

#[test]
fn custom_features_finite_after_cleaning() {
    let ds = DatasetBuilder::tiny(8).build();
    for t in ds.undisturbed.iter().chain(&ds.disturbed) {
        let fs = t.custom_features();
        assert_eq!(fs.dims(), 19);
        // The executor averages exclude NaN slots, so the 19 features are
        // fully finite even though the base series contains NaN.
        let nan = fs.records().flatten().filter(|x| x.is_nan()).count();
        assert_eq!(nan, 0, "NaN leaked into the custom feature set of {}", t.name());
    }
}
