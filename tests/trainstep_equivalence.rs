//! End-to-end numerics contract of the fused training step: running the
//! full pipeline with the SIMD elementwise kernels and reused training
//! workspaces produces *bitwise identical* results to the naive escape
//! hatch (`EXATHLON_NAIVE_ELEMENTWISE=1`), which re-enacts the
//! pre-fusion clone-heavy training loop.
//!
//! Every fused path is a pure expression rewrite — same accumulation
//! order, mul-then-add (never FMA), correctly-rounded AVX2 lanes — so
//! trained weights, scores, thresholds, and metrics must all match to
//! the bit. The three learned models (AE, LSTM forecaster, BiGAN) cover
//! the dense forward/backward epilogues, BPTT, and the adversarial
//! two-step respectively.
//!
//! The toggle is process-global, so the whole comparison lives in one
//! test binary and the variable is restored before the test returns.

use exathlon_core::config::{AdMethod, ExperimentConfig};
use exathlon_core::evaluate::evaluate_detection;
use exathlon_core::experiment::{run_pipeline, PipelineRun};
use exathlon_core::model::TrainingBudget;
use exathlon_linalg::elemwise::NAIVE_ELEMENTWISE_ENV;
use exathlon_sparksim::dataset::DatasetBuilder;
use exathlon_tsmetrics::presets::AdLevel;

/// The gradient-trained models: dense autoencoder (Dense/Mlp epilogues
/// and Adam), LSTM forecaster (fused BPTT workspace), and BiGAN (the
/// cached two-step adversarial batch).
const METHODS: [AdMethod; 3] = [AdMethod::Ae, AdMethod::Lstm, AdMethod::BiGan];

fn pipeline() -> PipelineRun {
    let ds = DatasetBuilder::tiny(11).build();
    let config = ExperimentConfig { resample_interval: 2, ..ExperimentConfig::default() };
    run_pipeline(&ds, &config, &METHODS, TrainingBudget::Quick)
}

#[test]
fn pipeline_bitwise_identical_with_naive_elementwise() {
    // Fused (default) run first, then the naive re-enactment.
    std::env::remove_var(NAIVE_ELEMENTWISE_ENV);
    let fused = pipeline();
    std::env::set_var(NAIVE_ELEMENTWISE_ENV, "1");
    let naive = pipeline();
    std::env::remove_var(NAIVE_ELEMENTWISE_ENV);

    for (method, fused_run) in &fused.methods {
        let naive_run = naive.method_run(*method);

        // Per-record scores of the trained models: bitwise identical —
        // any drift in a single weight update would show up here.
        assert_eq!(fused_run.scored.len(), naive_run.scored.len(), "{method:?}: test count");
        for (a, b) in fused_run.scored.iter().zip(&naive_run.scored) {
            assert_eq!(a.trace_id, b.trace_id, "{method:?}: trace order");
            assert_eq!(a.labels, b.labels, "{method:?}: labels");
            assert_eq!(a.scores.len(), b.scores.len(), "{method:?}: score count");
            for (i, (x, y)) in a.scores.iter().zip(&b.scores).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{method:?} trace {} score {i}: fused {x} vs naive {y}",
                    a.trace_id
                );
            }
        }

        // Detection metrics: identical at every AD level and rule.
        for level in AdLevel::ALL {
            let from_fused = evaluate_detection(&fused_run.model, &fused_run.scored, level);
            let from_naive = evaluate_detection(&naive_run.model, &naive_run.scored, level);
            assert_eq!(from_fused.len(), from_naive.len(), "{method:?} {level:?}: rule count");
            for (a, b) in from_fused.iter().zip(&from_naive) {
                assert_eq!(a.rule, b.rule, "{method:?} {level:?}: rule order");
                let ctx = format!("{method:?} {level:?} {}", a.rule);
                assert_eq!(
                    a.threshold.to_bits(),
                    b.threshold.to_bits(),
                    "{ctx}: threshold {} vs {}",
                    a.threshold,
                    b.threshold
                );
                assert_eq!(a.f1.to_bits(), b.f1.to_bits(), "{ctx}: f1 {} vs {}", a.f1, b.f1);
                assert_eq!(
                    a.precision.to_bits(),
                    b.precision.to_bits(),
                    "{ctx}: precision {} vs {}",
                    a.precision,
                    b.precision
                );
                assert_eq!(
                    a.recall.to_bits(),
                    b.recall.to_bits(),
                    "{ctx}: recall {} vs {}",
                    a.recall,
                    b.recall
                );
                assert_eq!(a.per_type_recall, b.per_type_recall, "{ctx}: per-type recall");
            }
        }

        // Separation AUPRC rides the same scores, so it is bitwise too.
        for (scope, a, b) in [
            ("trace", &fused_run.separation.trace, &naive_run.separation.trace),
            ("app", &fused_run.separation.app, &naive_run.separation.app),
            ("global", &fused_run.separation.global, &naive_run.separation.global),
        ] {
            assert_eq!(
                a.average.to_bits(),
                b.average.to_bits(),
                "{method:?} {scope} separation: fused {} vs naive {}",
                a.average,
                b.average
            );
        }
    }
}
