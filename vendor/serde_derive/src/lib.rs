//! Offline vendored stand-in for `serde_derive`.
//!
//! Hand-rolled (no `syn`/`quote` available offline): the input item is
//! parsed with a small token walker that understands exactly the shapes
//! this workspace derives — non-generic structs with named fields, and
//! non-generic enums whose variants are unit or newtype. Anything else is
//! rejected with a compile error rather than silently mis-serialized.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (JSON writer; see `vendor/serde`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derive `serde::Deserialize` (JSON tree reader; see `vendor/serde`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Shape {
    /// Named fields of a braced struct.
    Struct(Vec<String>),
    /// Enum variants: name + arity (0 = unit, 1 = newtype).
    Enum(Vec<(String, usize)>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse(input) {
        Ok((name, shape)) => generate(&name, &shape, mode).parse().unwrap(),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

/// Walk the item tokens: skip attributes and visibility, find
/// `struct`/`enum`, the type name, and the defining brace group.
fn parse(input: TokenStream) -> Result<(String, Shape), String> {
    let mut iter = input.into_iter().peekable();
    let mut kind: Option<String> = None;
    let mut name: Option<String> = None;
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Attribute: consume the bracket group.
                iter.next();
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                match (s.as_str(), &kind, &name) {
                    ("struct" | "enum", None, _) => kind = Some(s),
                    (_, Some(_), None) => {
                        name = Some(s);
                        // Reject generics: this stand-in derives only the
                        // concrete types of this workspace.
                        if let Some(TokenTree::Punct(p)) = iter.peek() {
                            if p.as_char() == '<' {
                                return Err(format!(
                                    "vendored serde_derive does not support generic type `{}`",
                                    name.unwrap()
                                ));
                            }
                        }
                    }
                    _ => {} // visibility / other modifiers
                }
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace && name.is_some() => {
                let name = name.unwrap();
                let shape = match kind.as_deref() {
                    Some("struct") => Shape::Struct(parse_struct_fields(g.stream())?),
                    Some("enum") => Shape::Enum(parse_enum_variants(g.stream())?),
                    _ => return Err("expected struct or enum".into()),
                };
                return Ok((name, shape));
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis && name.is_some() => {
                return Err(format!(
                    "vendored serde_derive does not support tuple struct `{}`",
                    name.unwrap()
                ));
            }
            _ => {}
        }
    }
    Err("vendored serde_derive: no struct/enum body found".into())
}

/// Field names of a braced struct body (types are skipped — the generated
/// code infers them from the struct literal).
fn parse_struct_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        match iter.peek() {
            None => return Ok(fields),
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next();
                continue;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                // `pub(crate)` & co: skip the scope group.
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
                continue;
            }
            _ => {}
        }
        let field = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("unexpected token in struct body: {other}")),
            None => return Ok(fields),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("expected `:` after field `{field}`")),
        }
        fields.push(field);
        // Skip the type: everything up to a comma at angle-depth 0.
        let mut depth = 0i32;
        for tt in iter.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
    }
}

/// Variant names and arities of an enum body.
fn parse_enum_variants(body: TokenStream) -> Result<Vec<(String, usize)>, String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next();
            }
            TokenTree::Ident(id) => {
                let vname = id.to_string();
                let mut arity = 0usize;
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    match g.delimiter() {
                        Delimiter::Parenthesis => {
                            arity = count_top_level_fields(g.stream());
                            iter.next();
                        }
                        Delimiter::Brace => {
                            return Err(format!(
                                "vendored serde_derive does not support struct variant `{vname}`"
                            ));
                        }
                        _ => {}
                    }
                }
                if arity > 1 {
                    return Err(format!(
                        "vendored serde_derive does not support {arity}-field tuple variant `{vname}`"
                    ));
                }
                variants.push((vname, arity));
                // Skip to the next comma (covers discriminants, which this
                // workspace does not use, defensively).
                while let Some(tt) = iter.peek() {
                    if matches!(tt, TokenTree::Punct(p) if p.as_char() == ',') {
                        iter.next();
                        break;
                    }
                    iter.next();
                }
            }
            _ => {}
        }
    }
    Ok(variants)
}

fn count_top_level_fields(body: TokenStream) -> usize {
    let mut count = 0usize;
    let mut depth = 0i32;
    let mut saw_any = false;
    for tt in body {
        saw_any = true;
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => count += 1,
            _ => {}
        }
    }
    if saw_any {
        count + 1
    } else {
        0
    }
}

fn generate(name: &str, shape: &Shape, mode: Mode) -> String {
    match (shape, mode) {
        (Shape::Struct(fields), Mode::Serialize) => {
            let mut body = String::from("out.push('{');\n");
            for (i, f) in fields.iter().enumerate() {
                body.push_str(&format!(
                    "serde::write_key(out, {f:?}, {first});\n\
                     serde::Serialize::serialize(&self.{f}, out);\n",
                    first = i == 0
                ));
            }
            body.push_str("out.push('}');");
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn serialize(&self, out: &mut String) {{\n{body}\n}}\n\
                 }}"
            )
        }
        (Shape::Struct(fields), Mode::Deserialize) => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: serde::de_field(v, {f:?}, {name:?})?,\n"))
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        (Shape::Enum(variants), Mode::Serialize) => {
            let arms: String = variants
                .iter()
                .map(|(v, arity)| match arity {
                    0 => format!("{name}::{v} => serde::write_json_string(out, {v:?}),\n"),
                    _ => format!(
                        "{name}::{v}(inner) => {{\n\
                             out.push('{{');\n\
                             serde::write_key(out, {v:?}, true);\n\
                             serde::Serialize::serialize(inner, out);\n\
                             out.push('}}');\n\
                         }}\n"
                    ),
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn serialize(&self, out: &mut String) {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
        (Shape::Enum(variants), Mode::Deserialize) => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, a)| *a == 0)
                .map(|(v, _)| format!("{v:?} => return Ok({name}::{v}),\n"))
                .collect();
            let newtype_arms: String = variants
                .iter()
                .filter(|(_, a)| *a == 1)
                .map(|(v, _)| {
                    format!(
                        "{v:?} => return Ok({name}::{v}(serde::Deserialize::deserialize(inner)?)),\n"
                    )
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                         if let Some(s) = v.as_str() {{\n\
                             match s {{ {unit_arms} _ => {{}} }}\n\
                         }}\n\
                         if let Some(fields) = v.as_object() {{\n\
                             if fields.len() == 1 {{\n\
                                 let (key, inner) = &fields[0];\n\
                                 match key.as_str() {{ {newtype_arms} _ => {{}} }}\n\
                             }}\n\
                         }}\n\
                         Err(serde::Error::custom(format!(\n\
                             \"no variant of {name} matches {{v:?}}\")))\n\
                     }}\n\
                 }}"
            )
        }
    }
}
