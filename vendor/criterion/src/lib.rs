//! Offline vendored stand-in for the `criterion` crate.
//!
//! Implements the subset of the API the `exathlon-bench` benches use with
//! real wall-clock measurement: each benchmark is warmed up, then timed
//! over `sample_size` samples of adaptively-chosen iteration counts, and
//! a `median ± interquartile` line is printed per benchmark. There is no
//! statistical regression analysis, HTML report, or baseline comparison —
//! this exists so `cargo bench` runs (and produces usable numbers) with
//! no network access.

use std::time::{Duration, Instant};

/// Re-export of the standard hint, matching `criterion::black_box`.
pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 30;
const WARM_UP: Duration = Duration::from_millis(300);
const TARGET_SAMPLE: Duration = Duration::from_millis(50);

/// Identifies one benchmark within a group (function label + parameter).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function/parameter` id.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { label: format!("{}/{}", function.into(), parameter) }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { label: parameter.to_string() }
    }
}

/// Drives timing of one benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, called in batches, over the configured samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up while estimating per-iteration cost.
        let warm_start = Instant::now();
        let mut iters = 0u64;
        while warm_start.elapsed() < WARM_UP {
            black_box(routine());
            iters += 1;
        }
        let per_iter = warm_start.elapsed() / iters.max(1) as u32;
        let batch =
            (TARGET_SAMPLE.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 20) as u64;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
        self.samples.sort();
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<40} (no samples)");
            return;
        }
        let median = self.samples[self.samples.len() / 2];
        let lo = self.samples[self.samples.len() / 4];
        let hi = self.samples[(self.samples.len() * 3) / 4];
        println!(
            "{label:<44} time: [{} {} {}]",
            fmt_duration(lo),
            fmt_duration(median),
            fmt_duration(hi)
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmark `routine` with an input value.
    pub fn bench_with_input<I, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        routine(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id.label));
        self
    }

    /// Benchmark `routine` with no input.
    pub fn bench_function<R>(&mut self, id: impl IntoLabel, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        routine(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id.into_label()));
        self
    }

    /// End the group (upstream flushes reports here; a no-op for us).
    pub fn finish(&mut self) {}
}

/// Accepts both `&str` names and [`BenchmarkId`]s.
pub trait IntoLabel {
    fn into_label(self) -> String;
}

impl IntoLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoLabel for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

/// The benchmark driver handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: DEFAULT_SAMPLE_SIZE, _criterion: self }
    }

    /// Benchmark a standalone function.
    pub fn bench_function<R>(&mut self, name: &str, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        if let Some(f) = &self.filter {
            if !name.contains(f.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher { samples: Vec::new(), sample_size: DEFAULT_SAMPLE_SIZE };
        routine(&mut bencher);
        bencher.report(name);
        self
    }

    #[doc(hidden)]
    pub fn from_args() -> Self {
        // `cargo bench -- <filter>` passes a substring filter; `--bench` &
        // co. from the harness protocol are ignored.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-') && !a.is_empty());
        Self { filter }
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench-harness entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_like_upstream() {
        assert_eq!(BenchmarkId::new("kNN", 19).label, "kNN/19");
        assert_eq!(BenchmarkId::from_parameter(64).label, "64");
    }

    #[test]
    fn fmt_duration_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(3)), "3.000 µs");
        assert_eq!(fmt_duration(Duration::from_millis(7)), "7.000 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
    }
}
