//! Offline vendored stand-in for the `parking_lot` crate: the un-poisoned
//! lock API implemented over `std::sync` (a poisoned std lock is simply
//! unwrapped — matching parking_lot's behaviour of not poisoning).

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock with parking_lot's non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::Mutex::new(value) }
    }

    /// Acquire the lock (never poisons).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock with parking_lot's non-poisoning `read()`/`write()`.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::RwLock::new(value) }
    }

    /// Acquire a shared read guard (never poisons).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard (never poisons).
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
