//! Offline vendored stand-in for the `serde` crate.
//!
//! The real serde is a generic data-model framework; this workspace only
//! ever serializes its own types to JSON and back (via the vendored
//! `serde_json`), so the stand-in collapses the data model to exactly
//! that: [`Serialize`] writes JSON text, [`Deserialize`] reads from a
//! parsed JSON [`Value`] tree. The `#[derive(Serialize, Deserialize)]`
//! macros (from the vendored `serde_derive`) generate impls for structs
//! with named fields and for enums with unit / newtype variants — the only
//! shapes this workspace derives.

pub use serde_derive::{Deserialize, Serialize};

/// Serialization error (the stand-in never fails to serialize; the type
/// exists for API parity and for `serde_json`'s parse errors).
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Create an error with a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// A parsed JSON document (object fields keep file order).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number written without `.`/`e` — kept exact for u64 tick values.
    Int(i128),
    /// A number with a fractional part or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The field list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Look up an object field by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Types that can write themselves as JSON.
pub trait Serialize {
    /// Append this value's JSON representation to `out`.
    fn serialize(&self, out: &mut String);
}

/// Types that can be read back from a parsed JSON [`Value`].
pub trait Deserialize: Sized {
    /// Build a value from the JSON tree, or explain why it cannot.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------- helpers
// Used by the generated derive code; public but doc-hidden like serde's
// own `__private`.

/// Write `"key":` (with a leading comma when not the first field).
#[doc(hidden)]
pub fn write_key(out: &mut String, key: &str, first: bool) {
    if !first {
        out.push(',');
    }
    write_json_string(out, key);
    out.push(':');
}

/// Deserialize a struct field by name.
#[doc(hidden)]
pub fn de_field<T: Deserialize>(v: &Value, name: &str, ty: &str) -> Result<T, Error> {
    let field =
        v.get(name).ok_or_else(|| Error::custom(format!("missing field `{name}` for {ty}")))?;
    T::deserialize(field).map_err(|e| Error::custom(format!("field `{name}` of {ty}: {e}")))
}

/// JSON-escape and write a string literal (with quotes).
#[doc(hidden)]
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Write an `f64` as a JSON value into a reused buffer: non-finite maps
/// to `null`, finite values use Rust's shortest-roundtrip `Display` so
/// the printed text parses back to the same bits. Allocation-free once
/// `out` has capacity — this is the hot-route float writer the serving
/// layer shares with [`write_json_string`]'s escape path.
pub fn write_json_f64(out: &mut String, x: f64) {
    use std::fmt::Write;
    if x.is_finite() {
        let _ = write!(out, "{x}");
    } else {
        out.push_str("null");
    }
}

// ------------------------------------------------------------ primitives

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::custom(format!(
                            "{i} out of range for {}", stringify!($t)))),
                    _ => Err(Error::custom(format!(
                        "expected integer for {}, got {v:?}", stringify!($t)))),
                }
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, out: &mut String) {
                if self.is_finite() {
                    out.push_str(&self.to_string());
                } else {
                    // JSON has no NaN/inf; serde_json writes null.
                    out.push_str("null");
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => Ok(*i as $t),
                    Value::Float(f) => Ok(*f as $t),
                    _ => Err(Error::custom(format!(
                        "expected number for {}, got {v:?}", stringify!($t)))),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for bool {
    fn serialize(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom(format!("expected bool, got {v:?}"))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self, out: &mut String) {
        write_json_string(out, self);
    }
}

impl Serialize for str {
    fn serialize(&self, out: &mut String) {
        write_json_string(out, self);
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom(format!("expected string, got {v:?}"))),
        }
    }
}

// ------------------------------------------------------------ containers

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, out: &mut String) {
        self.as_slice().serialize(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self, out: &mut String) {
        out.push('[');
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            item.serialize(out);
        }
        out.push(']');
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let items =
            v.as_array().ok_or_else(|| Error::custom(format!("expected array, got {v:?}")))?;
        items.iter().map(T::deserialize).collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, out: &mut String) {
        match self {
            Some(x) => x.serialize(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize(other)?)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, out: &mut String) {
        (*self).serialize(out);
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$n.serialize(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let items = v
                    .as_array()
                    .ok_or_else(|| Error::custom(format!("expected array tuple, got {v:?}")))?;
                let expect = [$( $n, )+].len();
                if items.len() != expect {
                    return Err(Error::custom(format!(
                        "expected {expect}-tuple, got {} elements", items.len())));
                }
                Ok(($( $t::deserialize(&items[$n])?, )+))
            }
        }
    )+};
}

tuple_impls!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip_shapes() {
        let mut out = String::new();
        42u64.serialize(&mut out);
        assert_eq!(out, "42");
        out.clear();
        (-1.5f64).serialize(&mut out);
        assert_eq!(out, "-1.5");
        out.clear();
        f64::NAN.serialize(&mut out);
        assert_eq!(out, "null");
        out.clear();
        "a\"b".to_string().serialize(&mut out);
        assert_eq!(out, "\"a\\\"b\"");
    }

    #[test]
    fn containers_serialize() {
        let mut out = String::new();
        vec![1u32, 2, 3].serialize(&mut out);
        assert_eq!(out, "[1,2,3]");
        out.clear();
        (Some(1u8), Option::<u8>::None).serialize(&mut out);
        assert_eq!(out, "[1,null]");
        out.clear();
        (7u64, 9u64).serialize(&mut out);
        assert_eq!(out, "[7,9]");
    }

    #[test]
    fn deserialize_primitives() {
        assert_eq!(u64::deserialize(&Value::Int(7)).unwrap(), 7);
        assert!(u8::deserialize(&Value::Int(300)).is_err());
        assert_eq!(f64::deserialize(&Value::Float(1.25)).unwrap(), 1.25);
        assert_eq!(f64::deserialize(&Value::Int(2)).unwrap(), 2.0);
        assert_eq!(Option::<u64>::deserialize(&Value::Null).unwrap(), None);
        let arr = Value::Array(vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(<(u64, u64)>::deserialize(&arr).unwrap(), (1, 2));
    }
}
