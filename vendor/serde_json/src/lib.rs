//! Offline vendored stand-in for the `serde_json` crate: a small
//! recursive-descent JSON parser plus the handful of entry points this
//! workspace calls, over the vendored `serde`'s collapsed data model.
//!
//! `f64` values are written with Rust's shortest-roundtrip formatting, so
//! the `float_roundtrip` guarantee of the real crate holds by
//! construction.

pub use serde::{Error, Value};

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to a JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.serialize(&mut out);
    Ok(out)
}

/// Serialize to a JSON byte vector.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    Ok(to_string(value)?.into_bytes())
}

/// Serialize to an indented JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let compact = to_string(value)?;
    let tree = parse_value(&compact)?;
    let mut out = String::new();
    pretty(&tree, 0, &mut out);
    Ok(out)
}

/// Serialize to an indented JSON byte vector.
pub fn to_vec_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    Ok(to_string_pretty(value)?.into_bytes())
}

/// Deserialize from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    T::deserialize(&parse_value(s)?)
}

/// Deserialize from JSON bytes.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::custom(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

fn pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let inner_pad = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&inner_pad);
                pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&inner_pad);
                serde::write_json_string(out, k);
                out.push_str(": ");
                pretty(val, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => {
            let mut s = String::new();
            write_value(other, &mut s);
            out.push_str(&s);
        }
    }
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            use std::fmt::Write;
            let _ = write!(out, "{i}");
        }
        Value::Float(f) => serde::write_json_f64(out, *f),
        Value::Str(s) => serde::write_json_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                serde::write_json_string(out, k);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

/// Parse a complete JSON document into a [`Value`] tree.
pub fn parse_value(s: &str) -> Result<Value> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let v = parse_at(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::custom(format!("trailing data at byte {pos}")));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_at(b: &[u8], pos: &mut usize) -> Result<Value> {
    skip_ws(b, pos);
    let Some(&c) = b.get(*pos) else {
        return Err(Error::custom("unexpected end of JSON"));
    };
    match c {
        b'n' => expect_lit(b, pos, "null", Value::Null),
        b't' => expect_lit(b, pos, "true", Value::Bool(true)),
        b'f' => expect_lit(b, pos, "false", Value::Bool(false)),
        b'"' => Ok(Value::Str(parse_string(b, pos)?)),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_at(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::custom(format!("expected , or ] at byte {pos}"))),
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(Error::custom(format!("expected : at byte {pos}")));
                }
                *pos += 1;
                let value = parse_at(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(Error::custom(format!("expected , or }} at byte {pos}"))),
                }
            }
        }
        b'-' | b'0'..=b'9' => parse_number(b, pos),
        other => Err(Error::custom(format!("unexpected byte {other:#x} at {pos}"))),
    }
}

fn expect_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(Error::custom(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(Error::custom(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&c) = b.get(*pos) else {
            return Err(Error::custom("unterminated string"));
        };
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = b.get(*pos) else {
                    return Err(Error::custom("unterminated escape"));
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("bad \\u escape"))?,
                            16,
                        )
                        .map_err(|_| Error::custom("bad \\u escape"))?;
                        *pos += 4;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    other => return Err(Error::custom(format!("bad escape \\{}", other as char))),
                }
            }
            _ => {
                // Re-sync on UTF-8 boundaries: find the full char.
                let start = *pos - 1;
                let s = std::str::from_utf8(&b[start..])
                    .map_err(|e| Error::custom(format!("invalid UTF-8 in string: {e}")))?;
                let ch = s.chars().next().unwrap();
                out.push(ch);
                *pos = start + ch.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value> {
    let start = *pos;
    let mut is_float = false;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).unwrap();
    if is_float {
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|e| Error::custom(format!("bad number {text:?}: {e}")))
    } else {
        text.parse::<i128>()
            .map(Value::Int)
            .map_err(|e| Error::custom(format!("bad number {text:?}: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let doc = r#"{"a": 1, "b": [true, null, -2.5], "c": "x\ny", "d": {"e": []}}"#;
        let v = parse_value(doc).unwrap();
        assert_eq!(v.get("a"), Some(&Value::Int(1)));
        assert_eq!(v.get("b").unwrap().as_array().unwrap()[2], Value::Float(-2.5));
        assert_eq!(v.get("c").unwrap().as_str(), Some("x\ny"));
        let mut out = String::new();
        write_value(&v, &mut out);
        let back = parse_value(&out).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn big_u64_exact() {
        let n = u64::MAX - 3;
        let v = parse_value(&n.to_string()).unwrap();
        assert_eq!(v, Value::Int(n as i128));
        let back: u64 = from_str(&n.to_string()).unwrap();
        assert_eq!(back, n);
    }

    #[test]
    fn floats_roundtrip() {
        for &f in &[0.1, 1e-17, 123456.789, -0.000123] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, f, "{s}");
        }
    }

    #[test]
    fn pretty_output_parses() {
        let doc = r#"{"a":[1,2],"b":{"c":"d"}}"#;
        let v = parse_value(doc).unwrap();
        let mut out = String::new();
        pretty(&v, 0, &mut out);
        assert_eq!(parse_value(&out).unwrap(), v);
        assert!(out.contains('\n'), "pretty output should be indented");
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("nul").is_err());
        assert!(parse_value("1 2").is_err());
    }
}
