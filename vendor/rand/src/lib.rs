//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment of this repository has no network access and no
//! crates.io cache, so the workspace vendors the minimal API surface it
//! actually uses (see `vendor/README.md`). The generator is
//! xoshiro256++ seeded through SplitMix64 — a high-quality, small-state
//! PRNG. Streams are **not** bit-compatible with upstream `rand`'s
//! `StdRng`; the workspace only relies on determinism for a fixed seed,
//! which this implementation guarantees.

use std::ops::{Range, RangeInclusive};

/// A seedable random number generator (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed type (fixed-size byte array upstream; kept for parity).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` seed (the only constructor this workspace
    /// uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let bytes = seed.as_mut();
        // SplitMix64 expansion, as upstream does for small seeds.
        let mut sm = state;
        for chunk in bytes.chunks_mut(8) {
            let v = splitmix64(&mut sm);
            for (i, b) in chunk.iter_mut().enumerate() {
                *b = (v >> (8 * i)) as u8;
            }
        }
        Self::from_seed(seed)
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Core RNG trait (subset of `rand::RngCore` + `rand::Rng` merged).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample uniformly from a range (`Range` or `RangeInclusive` over the
    /// primitive numeric types).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Sample a value of type `T` from its canonical distribution
    /// (`f64`/`f32` in `[0, 1)`, full-width integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Bernoulli sample with success probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Map 64 random bits to a double in `[0, 1)` (53-bit mantissa method).
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types with a canonical `gen()` distribution (stand-in for
/// `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Sample one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges a value can be sampled from (stand-in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with uniform range sampling (stand-in for
/// `rand::distributions::uniform::SampleUniform`).
///
/// `SampleRange` is implemented once, generically, over this trait —
/// mirroring upstream's structure so that unsuffixed literals in
/// `rng.gen_range(0..n)` unify with the surrounding type context instead
/// of falling back to `i32`.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + uniform_u128(rng, span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                // Cannot overflow u128 for <=64-bit primitives.
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + uniform_u128(rng, span) as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform integer in `[0, span)` by widening multiply (Lemire's method,
/// without the rejection step — the bias is < 2^-64, irrelevant here).
#[inline]
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    let x = rng.next_u64() as u128;
    (x * span) >> 64
}

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let u = unit_f64(rng.next_u64()) as $t;
                let v = lo + (hi - lo) * u;
                // Guard against rounding up to the excluded endpoint.
                if v >= hi { lo } else { v }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// The RNG types (stand-in for `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's deterministic standard RNG.
    ///
    /// Not stream-compatible with upstream `StdRng` (ChaCha12); the
    /// workspace only requires fixed-seed determinism.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut v = 0u64;
                for (j, &b) in chunk.iter().enumerate() {
                    v |= (b as u64) << (8 * j);
                }
                s[i] = v;
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 0x6A09_E667_F3BC_C909, 0xB7E1_5162_8AED_2A6B, 1];
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for API parity (upstream's small fast RNG).
    pub type SmallRng = StdRng;
}

/// Sequence-related helpers (stand-in for `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random selection on slices (subset of
    /// `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Prelude (subset of `rand::prelude`).
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64_pub(), c.next_u64_pub());
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn unit_interval_statistics() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice untouched");
    }

    #[test]
    fn gen_bool_probabilities() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}
