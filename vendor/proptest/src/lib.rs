//! Offline vendored stand-in for the `proptest` crate.
//!
//! Implements the subset of the API this workspace's property tests use:
//! the `proptest!` macro (with optional `#![proptest_config(..)]`),
//! range / tuple / `Just` / `any` / `prop_oneof!` / `collection::vec`
//! strategies with `prop_map` / `prop_flat_map`, and the `prop_assert*` /
//! `prop_assume!` macros. Cases are sampled from a per-test deterministic
//! RNG; there is no shrinking — a failing case panics with the assertion
//! message, which is enough for the invariant-style properties tested
//! here.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

#[doc(hidden)]
pub use rand::rngs::StdRng;
#[doc(hidden)]
pub use rand::SeedableRng;
use rand::{Rng, Standard};

/// Test-runner configuration (subset of `proptest::test_runner`'s).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the suite fast while still
        // exploring the space.
        Self { cases: 64 }
    }
}

/// Why a sampled case did not produce a verdict.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// Explicit failure (unused by the macros here, which panic instead).
    Fail(String),
}

/// A generator of random values (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Sample one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then a dependent strategy from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values satisfying a predicate (re-samples up to a bound).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f, whence }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 1000 consecutive samples", self.whence)
    }
}

/// Always produce a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The canonical distribution of `T` (`proptest::arbitrary::any`).
pub fn any<T: Standard>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Standard> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen()
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategies {
    ($(($($n:tt $s:ident),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategies!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
);

/// Uniform choice over boxed alternatives — the engine of [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the alternatives (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Permitted sizes of a generated collection.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// Strategy for `Vec`s of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// FNV-1a, used to derive a per-test deterministic seed from its name.
#[doc(hidden)]
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

/// The property-test macro (subset of upstream's: name-only argument
/// patterns, optional leading `#![proptest_config(..)]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = <$crate::StdRng as $crate::SeedableRng>::seed_from_u64(
                $crate::fnv1a(concat!(module_path!(), "::", stringify!($name))),
            );
            let mut ran = 0u32;
            let mut attempts = 0u32;
            while ran < config.cases {
                attempts += 1;
                if attempts > config.cases * 100 {
                    panic!("prop_assume! rejected too many cases in {}", stringify!($name));
                }
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                // The closure gives $body a scope where `return Err(Reject)`
                // (prop_assume!) skips just this case.
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                match outcome {
                    Ok(()) => ran += 1,
                    Err($crate::TestCaseError::Reject) => {}
                    Err($crate::TestCaseError::Fail(msg)) => panic!("{}", msg),
                }
            }
        }
    )*};
}

/// Assert inside a property (panics with the case's message on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Skip the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $( $crate::Strategy::boxed($strat), )+
        ])
    };
}

/// Everything a property-test file needs (subset of upstream's prelude).
pub mod prelude {
    pub use super::collection;
    pub use super::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, Union,
    };
    /// `prop::` alias as upstream's prelude provides.
    pub mod prop {
        pub use super::super::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate as proptest;
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u64..10, f in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_sizes(v in proptest::collection::vec(0u32..5, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![Just(1u32), Just(2u32)].prop_map(|x| x * 10)) {
            prop_assert!(v == 10 || v == 20);
        }
    }

    #[test]
    fn flat_map_dependent_sizes() {
        let strat = (1usize..5).prop_flat_map(|n| collection::vec(0u8..niceness(), n * 2));
        let mut rng = <crate::StdRng as crate::SeedableRng>::seed_from_u64(1);
        for _ in 0..50 {
            let v = strat.sample(&mut rng);
            assert!(v.len() % 2 == 0 && (2..10).contains(&v.len()));
        }
    }

    fn niceness() -> u8 {
        7
    }
}
