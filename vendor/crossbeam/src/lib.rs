//! Offline vendored stand-in for the `crossbeam` crate.
//!
//! Only the scoped-thread API this workspace uses is provided, implemented
//! on top of `std::thread::scope` (stable since Rust 1.63). Semantics
//! match the call sites' expectations: `scope` returns `Ok(r)` on success,
//! handles join in spawn order, and a panicking worker propagates when
//! joined.

use std::any::Any;

/// Spawn handle of a scoped worker thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Wait for the worker and return its result (`Err` if it panicked).
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

/// The scope passed to [`scope`]'s closure; spawns worker threads that may
/// borrow from the enclosing stack frame.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped worker. As in crossbeam, the closure receives the
    /// scope again so workers can spawn sub-workers.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner_scope = self.inner;
        ScopedJoinHandle { inner: inner_scope.spawn(move || f(&Scope { inner: inner_scope })) }
    }
}

/// Create a scope for spawning borrowing threads (crossbeam's
/// `crossbeam::scope`). All workers are joined before this returns.
///
/// Unlike crossbeam, a worker panic that was already consumed via
/// [`ScopedJoinHandle::join`] does not surface here; an *unjoined*
/// panicking worker propagates its panic (std scope semantics). Both call
/// patterns in this workspace join every handle and `expect` the result,
/// so the observable behaviour is identical.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

/// `crossbeam::thread` module alias, as upstream re-exports.
pub mod thread {
    pub use super::{scope, Scope, ScopedJoinHandle};
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_fanout_preserves_order() {
        let data: Vec<u64> = (0..100).collect();
        let chunks: Vec<&[u64]> = data.chunks(7).collect();
        let sums = super::scope(|s| {
            let handles: Vec<_> =
                chunks.iter().map(|c| s.spawn(move |_| c.iter().sum::<u64>())).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<u64>>()
        })
        .unwrap();
        assert_eq!(sums.iter().sum::<u64>(), 4950);
        assert_eq!(sums[0], (0..7).sum::<u64>(), "first chunk's sum first");
    }

    #[test]
    fn worker_panic_is_reported_at_join() {
        let res = super::scope(|s| {
            let h = s.spawn(|_| -> u32 { panic!("worker died") });
            h.join()
        })
        .unwrap();
        assert!(res.is_err());
    }

    #[test]
    fn nested_spawn_from_worker() {
        let total = super::scope(|s| {
            let h = s.spawn(|inner| {
                let h2 = inner.spawn(|_| 21u32);
                h2.join().unwrap() * 2
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(total, 42);
    }
}
