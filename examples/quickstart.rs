//! Quickstart: build a tiny dataset, train a detector, detect anomalies,
//! and score the detection with range-based precision/recall.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use exathlon::ad::knn_ad::{KnnConfig, KnnDetector};
use exathlon::ad::threshold::{ThresholdRule, ThresholdStat};
use exathlon::ad::AnomalyScorer;
use exathlon::core::config::ExperimentConfig;
use exathlon::core::model::split_train;
use exathlon::core::partition::partition;
use exathlon::core::transform::FittedTransform;
use exathlon::core::LearningSetting;
use exathlon::metrics::presets::{evaluate_at_level, AdLevel};
use exathlon::metrics::ranges::ranges_from_flags;
use exathlon::sparksim::dataset::DatasetBuilder;

fn main() {
    // 1. Dataset: 4 undisturbed + 2 disturbed traces (one bursty-input,
    //    one stalled-input anomaly).
    let dataset = DatasetBuilder::tiny(42).build();
    println!(
        "dataset: {} undisturbed traces, {} disturbed, {} labeled anomalies",
        dataset.undisturbed.len(),
        dataset.disturbed.len(),
        dataset.ground_truth.len()
    );

    // 2. Partition (LS4: train on undisturbed only) and transform into the
    //    19-feature custom space.
    let config = ExperimentConfig::default();
    let parts = partition(&dataset, LearningSetting::ls4(), config.peek_fraction);
    let (transform, train) = FittedTransform::fit(&parts.train, &config);
    let tests: Vec<_> = parts.test.iter().map(|s| transform.apply_test(s)).collect();

    // 3. Fit a simple distance-based detector and an unsupervised
    //    threshold on held-out training scores.
    let (d1, d2) = split_train(&train, 0.25);
    let mut detector = KnnDetector::new(KnnConfig::default());
    detector.fit(&d1.iter().collect::<Vec<_>>());
    let mut d2_scores = Vec::new();
    for ts in &d2 {
        d2_scores.extend(detector.score_series(ts));
    }
    let rule = ThresholdRule { stat: ThresholdStat::Iqr, factor: 2.0, two_pass: true };
    let threshold = rule.fit(&d2_scores);
    println!("threshold ({}) = {threshold:.3}", rule.label());

    // 4. Detect on each disturbed trace and evaluate at AD2 (range
    //    detection).
    for test in &tests {
        let scores = detector.score_series(&test.series);
        let flags = ThresholdRule::apply(threshold, &scores);
        let predicted = ranges_from_flags(&flags, 0);
        let real = test.real_ranges();
        let prf = evaluate_at_level(&real, &predicted, AdLevel::Range);
        println!(
            "trace {:>2} ({:?}): real {:?}, predicted {} range(s), \
             AD2 precision {:.2} recall {:.2} F1 {:.2}",
            test.trace_id,
            test.dominant_type.expect("disturbed trace"),
            real,
            predicted.len(),
            prf.precision,
            prf.recall,
            prf.f1
        );
    }
    // Final cumulative profile snapshot (covers post-pipeline phases);
    // no-op unless EXATHLON_PROFILE=1.
    let _ = exathlon::core::obs::emit_report();
}
