//! Threshold-selection study: how much the unsupervised threshold choice
//! matters. Sweeps the paper's 24 rules (STD/MAD/IQR x factor x passes)
//! and shows the spread of detection F1 at each AD level — the reason
//! Table 4 reports both "best" and "median".
//!
//! ```sh
//! cargo run --release --example threshold_study
//! ```

use exathlon::core::config::{AdMethod, ExperimentConfig};
use exathlon::core::experiment::run_pipeline;
use exathlon::core::model::TrainingBudget;
use exathlon::metrics::presets::AdLevel;
use exathlon::sparksim::dataset::DatasetBuilder;

fn main() {
    let dataset = DatasetBuilder::tiny(3).build();
    let config = ExperimentConfig { resample_interval: 2, ..ExperimentConfig::default() };
    let run = run_pipeline(&dataset, &config, &[AdMethod::Knn], TrainingBudget::Quick);

    for level in AdLevel::ALL {
        let mut outcomes = run.detection(AdMethod::Knn, level);
        outcomes.sort_by(|a, b| b.f1.partial_cmp(&a.f1).expect("finite F1"));
        let best = &outcomes[0];
        let median = &outcomes[outcomes.len() / 2];
        let worst = outcomes.last().expect("24 outcomes");
        println!("=== {} ===", level.label());
        println!(
            "  best   {:<18} F1 {:.2} (precision {:.2}, recall {:.2})",
            best.rule, best.f1, best.precision, best.recall
        );
        println!(
            "  median {:<18} F1 {:.2} (precision {:.2}, recall {:.2})",
            median.rule, median.f1, median.precision, median.recall
        );
        println!(
            "  worst  {:<18} F1 {:.2} (precision {:.2}, recall {:.2})",
            worst.rule, worst.f1, worst.precision, worst.recall
        );
        let spread = best.f1 - worst.f1;
        println!("  spread {spread:.2} — threshold choice moves F1 by this much\n");
    }

    println!(
        "Takeaway: without labels, the thresholding rule is a first-class\n\
         hyperparameter; Exathlon therefore scores AD methods by the best\n\
         AND the median rule over this grid (Appendix D.2)."
    );
    // Final cumulative profile snapshot (covers post-pipeline phases);
    // no-op unless EXATHLON_PROFILE=1.
    let _ = exathlon::core::obs::emit_report();
}
