//! Explanation discovery: detect anomalies, then ask EXstream, MacroBase,
//! and LIME *why* each detected period is anomalous, printing the
//! explanations with human-readable feature names.
//!
//! ```sh
//! cargo run --release --example explain_anomalies
//! ```

use exathlon::ad::ae_ad::{AeConfig, AutoencoderDetector};
use exathlon::ad::AnomalyScorer;
use exathlon::core::config::ExperimentConfig;
use exathlon::core::edrun::collect_cases;
use exathlon::core::partition::partition;
use exathlon::core::transform::FittedTransform;
use exathlon::core::LearningSetting;
use exathlon::ed::explanation::Explanation;
use exathlon::ed::{ExstreamExplainer, LimeExplainer, MacroBaseExplainer};
use exathlon::sparksim::dataset::DatasetBuilder;
use exathlon::sparksim::metrics::custom_feature_names;

/// Replace `v_<i>` feature indices with their Appendix D.1 names.
fn with_names(text: &str) -> String {
    let names = custom_feature_names();
    let mut out = text.to_string();
    // Substitute longest indices first so v_12 is not clobbered by v_1.
    for j in (0..names.len()).rev() {
        out = out.replace(&format!("v_{j}"), &names[j]);
    }
    out
}

fn main() {
    let dataset = DatasetBuilder::tiny(9).build();
    let config = ExperimentConfig::default();
    let parts = partition(&dataset, LearningSetting::ls4(), config.peek_fraction);
    let (transform, train) = FittedTransform::fit(&parts.train, &config);
    let tests: Vec<_> = parts.test.iter().map(|s| transform.apply_test(s)).collect();

    // The AD model LIME will interrogate.
    let mut ae = AutoencoderDetector::new(AeConfig {
        window: 6,
        hidden: vec![24],
        code: 4,
        epochs: 15,
        ..AeConfig::default()
    });
    ae.fit(&train.iter().collect::<Vec<_>>());

    let cases = collect_cases(&tests, 10);
    println!("explaining {} anomalies\n", cases.len());

    for case in &cases {
        println!(
            "=== {} anomaly on trace {} ({} anomalous records) ===",
            case.atype.label(),
            case.trace_id,
            case.anomaly.len()
        );

        let ex = ExstreamExplainer::default().explain(&case.anomaly, &case.reference);
        println!("EXstream : {}", with_names(&format!("{ex}")));

        let mb = MacroBaseExplainer::default().explain(&case.anomaly, &case.reference);
        println!("MacroBase: {}", with_names(&format!("{mb}")));

        let w = ae.window_len().min(case.anomaly.len());
        let window = case.anomaly.slice(0, w);
        let lime = LimeExplainer::default().explain(&window, &|flat: &[f64]| {
            // Pad short windows to the model's input size.
            let mut padded = flat.to_vec();
            let dims = case.anomaly.dims();
            while padded.len() < ae.window_len() * dims {
                let start = padded.len() - dims;
                let last: Vec<f64> = padded[start..].to_vec();
                padded.extend(last);
            }
            ae.window_score(&padded)
        });
        match &lime {
            Explanation::Importance(terms) if !terms.is_empty() => {
                println!("LIME     :");
                for t in terms {
                    println!("  {}", with_names(&format!("{}: {:+.3}", t.condition, t.weight)));
                }
            }
            _ => println!("LIME     : (no salient features)"),
        }
        println!();
    }
}
