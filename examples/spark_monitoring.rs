//! Spark-monitoring scenario: simulate a production-like run of a CPU
//! intensive streaming application, inject a CPU-contention incident and
//! a driver failure, and watch the detector's live outlier scores around
//! the incidents — the workload the paper's introduction motivates
//! (deadline-critical analytics jobs on a shared cluster).
//!
//! ```sh
//! cargo run --release --example spark_monitoring
//! ```

use exathlon::ad::ae_ad::{AeConfig, AutoencoderDetector};
use exathlon::ad::AnomalyScorer;
use exathlon::sparksim::deg::{AnomalyType, DegSchedule, InjectedEvent};
use exathlon::sparksim::engine::{simulate, SimSpec};
use exathlon::sparksim::metrics::custom_feature_set;
use exathlon::tsdata::scale::StandardScaler;

fn main() {
    // A normal reference run of application 0 to learn "normal" from.
    let normal_spec = SimSpec::undisturbed(0, 0, 1.0, 5, 900, 7);
    let (normal, _) = simulate(&normal_spec);

    // The monitored run: CPU contention at t=300 (node 2), then a driver
    // failure at t=600.
    let incident_spec = SimSpec {
        app_id: 0,
        trace_id: 1,
        rate_factor: 1.0,
        concurrency: 5,
        duration: 900,
        seed: 8,
        schedule: DegSchedule::new(vec![
            InjectedEvent {
                atype: AnomalyType::CpuContention,
                start: 300,
                duration: 80,
                intensity: 0.9,
                node: 2,
            },
            InjectedEvent {
                atype: AnomalyType::DriverFailure,
                start: 600,
                duration: 20,
                intensity: 0.0,
                node: 0,
            },
        ]),
    };
    let (monitored, ground_truth) = simulate(&incident_spec);
    println!("ground truth labels:");
    for e in &ground_truth {
        println!(
            "  {} rci=[{}, {}) eei={:?}",
            e.anomaly_type.label(),
            e.root_cause_start,
            e.root_cause_end,
            e.extended_effect
        );
    }

    // Feature engineering: the 19-feature custom set, scaled on normal.
    let train = custom_feature_set(&normal.base);
    let test = custom_feature_set(&monitored.base);
    let scaler = StandardScaler::fit(&train);
    let train = scaler.transform(&train);
    let test = scaler.transform(&test);

    // Train the autoencoder on the normal run.
    let mut detector = AutoencoderDetector::new(AeConfig {
        window: 8,
        hidden: vec![32],
        code: 6,
        epochs: 20,
        ..AeConfig::default()
    });
    detector.fit(&[&train]);
    let scores = detector.score_series(&test);

    // Report score levels around each incident.
    let mean = |range: std::ops::Range<usize>| -> f64 {
        let s = &scores[range.clone()];
        s.iter().sum::<f64>() / s.len() as f64
    };
    println!("\nmean outlier score by period:");
    println!("  steady state   [100, 290):  {:.4}", mean(100..290));
    println!("  CPU contention [300, 380):  {:.4}", mean(300..380));
    println!("  recovered      [450, 590):  {:.4}", mean(450..590));
    println!("  driver failure [600, 640):  {:.4}", mean(600..640));

    let steady = mean(100..290);
    let contention = mean(300..380);
    let failure = mean(600..640);
    assert!(contention > steady, "contention must raise the outlier score");
    assert!(failure > steady, "driver failure must raise the outlier score");
    println!(
        "\nincidents stand out: contention {:.1}x, driver failure {:.1}x over steady state",
        contention / steady,
        failure / steady
    );
}
